#![forbid(unsafe_code)]
//! Serving-path performance snapshot (the CI `server-perf` artifact).
//!
//! Boots a real `hopdb-server` daemon on an ephemeral loopback port
//! over a GLP-built index, then drives it with fast clients — each one
//! TCP connection issuing `--batch`-pair query frames, keeping
//! `--pipeline` requests in flight (1 = classic closed loop) — at 1
//! connection and at `--conns` connections. `--slow-conns` adds
//! background connections that trickle single-pair queries with
//! 10–20 ms pauses, so the latency gate reflects a mixed fleet: slow
//! pollers must not drag the fast clients' tail. `--update-conns K`
//! adds K background connections streaming live edge-insert (`update`)
//! frames from a fixed deterministic pool, and appends a third run
//! recording query p99 *under writes*; afterwards the tool verifies a
//! compaction promoted under concurrent query fire: every response
//! during and after the promotion must be bit-identical to an
//! in-process build of the mutated graph — no drops, no mixed
//! generations.
//!
//! Before any timing, every served answer is asserted bit-identical to
//! in-process `FlatIndex::query_many`.
//!
//! The snapshot lands in `BENCH_server.json`: pairs/second (QPS) and
//! request latency percentiles (p50/p99) per connection count, plus
//! the serving backend, pipelining depth, and write mix.
//!
//! Gates (any failure exits non-zero):
//!
//! * `--min-qps N` — pairs/second floor at `--conns` connections.
//! * `--max-p99-us N` — fast-client p99 request latency ceiling (µs)
//!   at `--conns` connections, measured with the slow fleet running
//!   (without the write mix — writes get their own run entry).
//! * `--max-write-p99-us N` — p99 ceiling for the under-writes run
//!   (requires `--update-conns`), gating the write path's impact.
//! * with `--update-conns`, the compaction-under-load check above.
//!
//! `--durability off|batch|always` runs the daemon with a write-ahead
//! log in a scratch directory, so the write mix pays the real
//! log-before-ack cost the durability tier adds.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin serverperf -- \
//!     --backend epoll --conns 4 --batch 256 --pipeline 8 --slow-conns 2 \
//!     --update-conns 2 --durability batch --min-qps 150000 \
//!     --max-p99-us 50000 --max-write-p99-us 80000 -o BENCH_server.json
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bench::Scale;
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig};
use hopdb_server::client::Session;
use hopdb_server::{serve, Backend, Client, ServerConfig};
use hoplabels::disk::DiskIndex;
use hoplabels::flat::FlatIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::VertexId;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// One connection-count measurement.
struct Run {
    conns: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    requests: usize,
    slow_requests: usize,
    update_conns: usize,
    update_frames: usize,
}

/// Drive the server from `conns` fast connections (each keeping
/// `pipeline` requests in flight) while `slow_conns` background
/// connections trickle single-pair queries with 10–20 ms pauses and
/// `update_conns` background connections stream edge inserts from
/// `update_pool`. Percentiles cover the fast clients only — the gate
/// is about background traffic not wrecking the fast tail, not about
/// the background connections themselves.
#[allow(clippy::too_many_arguments)]
fn measure(
    addr: std::net::SocketAddr,
    pairs: &[(VertexId, VertexId)],
    conns: usize,
    batch: usize,
    requests_per_conn: usize,
    pipeline: usize,
    slow_conns: usize,
    update_conns: usize,
    update_pool: &[(VertexId, VertexId, u32)],
) -> Run {
    let stop_slow = AtomicBool::new(false);
    let started = Instant::now();
    let (mut latencies, wall, slow_requests, update_frames) = std::thread::scope(|scope| {
        let slow: Vec<_> = (0..slow_conns)
            .map(|c| {
                let stop_slow = &stop_slow;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("slow connect");
                    let (mut count, mut i) = (0usize, c * 13);
                    while !stop_slow.load(Ordering::Relaxed) {
                        let (s, t) = pairs[i % pairs.len()];
                        client.query_one(s, t).expect("slow query");
                        count += 1;
                        std::thread::sleep(Duration::from_millis(10 + (i % 11) as u64));
                        i += 7;
                    }
                    count
                })
            })
            .collect();

        // Writers cycle a fixed pool, so the overlay stays bounded (the
        // log dedups) while every frame still exercises the full
        // update path: log append, overlay rebuild, generation publish.
        let updaters: Vec<_> = (0..update_conns)
            .map(|c| {
                let stop_slow = &stop_slow;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("update connect");
                    let (mut count, mut at) = (0usize, (c * 3) % update_pool.len());
                    while !stop_slow.load(Ordering::Relaxed) {
                        let end = (at + 8).min(update_pool.len());
                        client.update(&update_pool[at..end]).expect("update frame");
                        count += 1;
                        at = if end == update_pool.len() { 0 } else { end };
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    count
                })
            })
            .collect();

        let fast: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut session = Session::connect(addr).expect("connect");
                    let mut window: VecDeque<(hopdb_server::client::Ticket, Instant)> =
                        VecDeque::with_capacity(pipeline);
                    let mut lat = Vec::with_capacity(requests_per_conn);
                    let redeem =
                        |session: &mut Session, window: &mut VecDeque<_>, lat: &mut Vec<f64>| {
                            let (ticket, t0): (_, Instant) = window.pop_front().unwrap();
                            let got = session.wait(ticket).expect("wait");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                            assert_eq!(got.len(), batch);
                        };
                    for r in 0..requests_per_conn {
                        // Each request replays a rotating window so
                        // different connections touch different pairs.
                        let at = (c * 31 + r * batch) % (pairs.len() - batch);
                        window.push_back((
                            session.submit(&pairs[at..at + batch]).expect("submit"),
                            Instant::now(),
                        ));
                        if window.len() >= pipeline.max(1) {
                            redeem(&mut session, &mut window, &mut lat);
                        }
                    }
                    while !window.is_empty() {
                        redeem(&mut session, &mut window, &mut lat);
                    }
                    lat
                })
            })
            .collect();

        let latencies: Vec<f64> =
            fast.into_iter().flat_map(|h| h.join().expect("fast client")).collect();
        let wall = started.elapsed().as_secs_f64();
        stop_slow.store(true, Ordering::Relaxed);
        let slow_requests = slow.into_iter().map(|h| h.join().expect("slow client")).sum();
        let update_frames = updaters.into_iter().map(|h| h.join().expect("updater")).sum();
        (latencies, wall, slow_requests, update_frames)
    });
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total_requests = conns * requests_per_conn;
    Run {
        conns,
        qps: (total_requests * batch) as f64 / wall,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        requests: total_requests,
        slow_requests,
        update_conns,
        update_frames,
    }
}

/// `count` distinct weight-1..3 edges over `n` vertices, deterministic
/// in `seed`, pair-unique so the overlay log dedups to `count` edges.
fn update_edge_pool(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId, u32)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut seen = std::collections::HashSet::new();
    let mut pool = Vec::with_capacity(count);
    while pool.len() < count {
        let (s, t) = ((next() % n as u64) as VertexId, (next() % n as u64) as VertexId);
        let (lo, hi) = (s.min(t), s.max(t));
        if lo != hi && seen.insert((lo, hi)) {
            pool.push((s, t, (next() % 3) as u32 + 1));
        }
    }
    pool
}

/// Apply the whole pool (the writers cycled it, so this is idempotent),
/// build the mutated graph from scratch in-process, then fire `conns`
/// query threads that assert every response against that ground truth
/// while the main thread promotes a compaction. Panics — failing the
/// bench run — on any dropped, erroring, or misanswered query.
fn verify_compaction_under_load(
    addr: std::net::SocketAddr,
    g: &sfgraph::Graph,
    update_pool: &[(VertexId, VertexId, u32)],
    sweep: &[(VertexId, VertexId)],
    conns: usize,
    batch: usize,
) {
    use sfgraph::builder::GraphBuilder;

    let mut admin = Client::connect(addr).expect("verify connect");
    admin.update(update_pool).expect("apply full pool");

    // From-scratch oracle: base graph + pool, rebuilt and re-ranked the
    // same way the daemon's compactor does it.
    let mut b = GraphBuilder::new_undirected(g.num_vertices()).weighted();
    for (u, v, w) in g.edge_list() {
        b.add_weighted_edge(u, v, w);
    }
    for &(u, v, w) in update_pool {
        b.add_weighted_edge(u, v, w);
    }
    let mutated = b.build();
    let ranking = rank_vertices(&mutated, &RankBy::Degree);
    let relabeled = relabel_by_rank(&mutated, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(0));
    let flat = FlatIndex::from_index(&index);
    let ranked: Vec<(VertexId, VertexId)> =
        sweep.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();
    let expect = flat.query_many(&ranked, 0);

    let stop = AtomicBool::new(false);
    let answered = std::thread::scope(|scope| {
        let fleet: Vec<_> = (0..conns)
            .map(|c| {
                let (stop, sweep, expect) = (&stop, sweep, &expect);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("fleet connect");
                    let mut answered = 0usize;
                    let mut at = (c * 127) % sweep.len();
                    while !stop.load(Ordering::Relaxed) {
                        let end = (at + batch).min(sweep.len());
                        let got = client.query(&sweep[at..end]).expect("query during compaction");
                        assert_eq!(
                            got,
                            expect[at..end],
                            "misanswered query during compaction promotion"
                        );
                        answered += end - at;
                        at = if end == sweep.len() { 0 } else { end };
                    }
                    answered
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(100));
        let (generation, _) = admin.compact().expect("compact under load");
        assert!(generation >= 2, "compaction did not bump the generation");
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        fleet.into_iter().map(|h| h.join().expect("fleet thread")).sum::<usize>()
    });
    let info = admin.info().expect("info");
    assert_eq!(info.overlay_edges, 0, "compaction must drain the overlay");
    eprintln!(
        "  compaction under load ok: {answered} pairs answered across the promotion \
         (generation {}, {} compactions)",
        info.generation, info.compactions
    );
}

/// The `--router` variant: boot two real backend daemons (same image
/// for `replica`, a pivot-range split for `shard`), front them with
/// `serve_router`, assert routed answers are byte-identical to the
/// in-process `FlatIndex`, measure QPS/p99 through the router, and —
/// replica mode — kill one backend under fire and require zero lost
/// queries. The snapshot lands in `BENCH_router.json`.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_lines)]
fn router_main(args: &[String], modes: &str) {
    use hopdb_server::{serve_router, RouteMode, RouterConfig};

    let scale = Scale::from_env();
    let out_path = arg_value(args, "-o").unwrap_or_else(|| "BENCH_router.json".to_string());
    let conns: usize = arg_value(args, "--conns").map_or(4, |v| v.parse().expect("bad --conns"));
    let batch: usize = arg_value(args, "--batch").map_or(256, |v| v.parse().expect("bad --batch"));
    let pipeline: usize =
        arg_value(args, "--pipeline").map_or(1, |v| v.parse().expect("bad --pipeline"));
    let min_qps: Option<f64> =
        arg_value(args, "--min-qps").map(|v| v.parse().expect("bad --min-qps"));
    let max_p99_us: Option<f64> =
        arg_value(args, "--max-p99-us").map(|v| v.parse().expect("bad --max-p99-us"));
    let modes: Vec<RouteMode> = match modes {
        "replica" => vec![RouteMode::Replica],
        "shard" => vec![RouteMode::Shard],
        "both" => vec![RouteMode::Replica, RouteMode::Shard],
        other => panic!("bad --router {other} (replica|shard|both)"),
    };

    let (n, density, requests_per_conn) = match scale {
        Scale::Small => (4_000, 3.0, 300),
        Scale::Medium => (12_000, 4.0, 1_000),
        Scale::Large => (40_000, 4.0, 3_000),
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "serverperf --router: GLP n={n} d={density} (scale {scale:?}, {cores} cores, \
         2 backends per mode, batch {batch}, pipeline {pipeline})"
    );
    let g = glp(&GlpParams::with_density(n, density, 42));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(0));
    let flat = FlatIndex::from_index(&index);

    // Stage the whole image plus a 2-way shard split, each with the
    // `.rank` sidecar so the wire speaks original vertex ids (the
    // shard router then broadcasts — exact either way).
    let dir = std::env::temp_dir().join(format!("hopdb-routerperf-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("stage dir");
    let store = extmem::device::TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, "routerperf").expect("serialize").persist();
    let image = std::fs::read(&staged).expect("read image");
    std::fs::remove_file(staged).ok();
    let rank_bytes = ranking.to_sidecar_bytes();
    let stage = |name: &str, bytes: &[u8]| -> std::path::PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("stage image");
        std::fs::write(format!("{}.rank", path.to_string_lossy()), &rank_bytes)
            .expect("stage sidecar");
        path
    };
    let whole_a = stage("whole-a.idx", &image);
    let whole_b = stage("whole-b.idx", &image);
    let shard_paths: Vec<std::path::PathBuf> = hoplabels::shard_image(&image, 2)
        .expect("shard")
        .into_iter()
        .map(|(bytes, spec)| {
            let path = stage(&format!("shard{}.idx", spec.index), &bytes);
            std::fs::write(format!("{}.shard", path.to_string_lossy()), spec.encode())
                .expect("stage shard sidecar");
            path
        })
        .collect();

    let sweep = bench::query_pairs(&relabeled, 65_536.max(batch * 8), 0xBEEF);
    let ranked_sweep: Vec<(VertexId, VertexId)> =
        sweep.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();
    let expect = flat.query_many(&ranked_sweep, 0);

    let mut failed = false;
    let mut mode_jsons = Vec::new();
    for mode in modes {
        let backends: Vec<_> = match mode {
            RouteMode::Replica => vec![&whole_a, &whole_b],
            RouteMode::Shard => shard_paths.iter().collect(),
        }
        .into_iter()
        .map(|path| serve("127.0.0.1:0", path, ServerConfig::default()).expect("backend"))
        .collect();
        let rt = serve_router(
            "127.0.0.1:0",
            RouterConfig {
                mode,
                backends: backends.iter().map(|b| b.local_addr()).collect(),
                ..RouterConfig::default()
            },
        )
        .expect("router");
        let addr = rt.local_addr();
        let tag = format!("{mode:?}").to_lowercase();
        eprintln!("  {tag} router on {addr} over {} backends", backends.len());

        // Correctness gate before any timing: routed answers must be
        // byte-identical to the in-process flat index.
        let mut checker = Client::connect(addr).expect("connect");
        let mut served = Vec::with_capacity(sweep.len());
        for chunk in sweep.chunks(batch.max(1)) {
            served.extend(checker.query(chunk).expect("sweep query"));
        }
        assert_eq!(served, expect, "{tag}: routed distances diverge from FlatIndex::query_many");
        drop(checker);
        eprintln!("  {tag}: answers byte-identical to FlatIndex on {} pairs", sweep.len());

        let pairs = &sweep;
        measure(addr, pairs, 1, batch, requests_per_conn / 4 + 1, pipeline, 0, 0, &[]);
        let runs = [
            measure(addr, pairs, 1, batch, requests_per_conn, pipeline, 0, 0, &[]),
            measure(addr, pairs, conns, batch, requests_per_conn, pipeline, 0, 0, &[]),
        ];
        for run in &runs {
            eprintln!(
                "  {tag} {} conn(s): {:>10.0} pairs/s   p50 {:>7.1} µs   p99 {:>7.1} µs",
                run.conns, run.qps, run.p50_us, run.p99_us,
            );
        }
        if let Some(want) = min_qps {
            let got = runs[1].qps;
            if got < want {
                eprintln!("{tag} QPS regression: {got:.0} pairs/s, gate wants {want:.0}");
                failed = true;
            }
        }
        if let Some(want) = max_p99_us {
            let got = runs[1].p99_us;
            if got > want {
                eprintln!("{tag} p99 regression: {got:.1} µs, gate allows {want:.1}");
                failed = true;
            }
        }

        // Availability gate (replica only): kill one of the two
        // backends while a fleet fires through the router. Zero lost
        // or misanswered queries allowed, and the failover counter
        // must prove the dead backend was actually in rotation.
        let mut availability_checked = false;
        if mode == RouteMode::Replica {
            let stop = AtomicBool::new(false);
            let mut backends = backends;
            let victim = backends.pop().expect("two backends");
            let answered = std::thread::scope(|scope| {
                let fleet: Vec<_> = (0..conns.max(2))
                    .map(|c| {
                        let (stop, sweep, expect) = (&stop, &sweep, &expect);
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("fleet connect");
                            let mut answered = 0usize;
                            let mut at = (c * 131) % (sweep.len() - batch);
                            while !stop.load(Ordering::Relaxed) {
                                let got = client
                                    .query(&sweep[at..at + batch])
                                    .expect("query across the kill");
                                assert_eq!(
                                    got,
                                    expect[at..at + batch],
                                    "misanswered query across the kill"
                                );
                                answered += batch;
                                at = (at + batch * 7) % (sweep.len() - batch);
                            }
                            answered
                        })
                    })
                    .collect();
                std::thread::sleep(Duration::from_millis(150));
                victim.shutdown();
                std::thread::sleep(Duration::from_millis(400));
                stop.store(true, Ordering::Relaxed);
                fleet.into_iter().map(|h| h.join().expect("fleet thread")).sum::<usize>()
            });
            assert!(
                rt.failovers() > 0,
                "the killed replica was never picked — the availability check proved nothing"
            );
            eprintln!(
                "  {tag}: kill-one-replica ok — {answered} pairs answered across the kill \
                 ({} failovers)",
                rt.failovers()
            );
            availability_checked = true;
            rt.shutdown();
            for b in backends {
                b.shutdown();
            }
        } else {
            rt.shutdown();
            for b in backends {
                b.shutdown();
            }
        }

        let runs_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    r#"{{"conns":{},"qps":{:.0},"p50_us":{:.1},"p99_us":{:.1},"requests":{}}}"#,
                    r.conns, r.qps, r.p50_us, r.p99_us, r.requests
                )
            })
            .collect();
        mode_jsons.push(format!(
            r#"{{"mode":"{tag}","backends":2,"availability_check":{availability_checked},"runs":[{}]}}"#,
            runs_json.join(",")
        ));
    }

    let json = format!(
        concat!(
            r#"{{"workload":{{"model":"glp","vertices":{},"density":{},"seed":42}},"#,
            r#""scale":"{:?}","cores":{},"batch":{},"pipeline":{},"#,
            r#""modes":[{}]}}"#
        ),
        n,
        density,
        scale,
        cores,
        batch,
        pipeline,
        mode_jsons.join(","),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");
    std::fs::remove_dir_all(&dir).ok();
    if failed {
        std::process::exit(1);
    }
}

#[cfg(not(target_os = "linux"))]
fn router_main(_args: &[String], _modes: &str) {
    panic!("--router requires the linux epoll backend");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(modes) = arg_value(&args, "--router") {
        router_main(&args, &modes);
        return;
    }
    let scale = Scale::from_env();
    let out_path = arg_value(&args, "-o").unwrap_or_else(|| "BENCH_server.json".to_string());
    let backend: Backend = arg_value(&args, "--backend")
        .map_or_else(Backend::default, |v| v.parse().expect("bad --backend"));
    let threads: usize =
        arg_value(&args, "--threads").map_or(4, |v| v.parse().expect("bad --threads"));
    let conns: usize =
        arg_value(&args, "--conns").map_or(threads, |v| v.parse().expect("bad --conns"));
    let batch: usize = arg_value(&args, "--batch").map_or(256, |v| v.parse().expect("bad --batch"));
    assert!(batch >= 1, "--batch must be at least 1 pair");
    let pipeline: usize =
        arg_value(&args, "--pipeline").map_or(1, |v| v.parse().expect("bad --pipeline"));
    assert!(pipeline >= 1, "--pipeline must be at least 1 request in flight");
    let slow_conns: usize =
        arg_value(&args, "--slow-conns").map_or(0, |v| v.parse().expect("bad --slow-conns"));
    let update_conns: usize =
        arg_value(&args, "--update-conns").map_or(0, |v| v.parse().expect("bad --update-conns"));
    let min_qps: Option<f64> =
        arg_value(&args, "--min-qps").map(|v| v.parse().expect("bad --min-qps"));
    let max_p99_us: Option<f64> =
        arg_value(&args, "--max-p99-us").map(|v| v.parse().expect("bad --max-p99-us"));
    let max_write_p99_us: Option<f64> =
        arg_value(&args, "--max-write-p99-us").map(|v| v.parse().expect("bad --max-write-p99-us"));
    let durability: Option<hopdb_server::wal::Durability> =
        arg_value(&args, "--durability").map(|v| v.parse().expect("bad --durability"));
    assert!(
        max_write_p99_us.is_none() || update_conns > 0,
        "--max-write-p99-us gates the under-writes run; pass --update-conns too"
    );
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let (n, density, requests_per_conn) = match scale {
        Scale::Small => (4_000, 3.0, 400),
        Scale::Medium => (12_000, 4.0, 1_500),
        Scale::Large => (40_000, 4.0, 4_000),
    };
    eprintln!(
        "serverperf: GLP n={n} d={density} (scale {scale:?}, {cores} cores, backend {backend:?}, \
         {threads} server threads, batch {batch}, pipeline {pipeline}, {slow_conns} slow conns)"
    );
    let g = glp(&GlpParams::with_density(n, density, 42));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(0));
    let flat = FlatIndex::from_index(&index);

    // Stage the artifacts the way `hopdb-cli build` would: index file,
    // `.rank` sidecar (so the wire speaks original vertex ids), and the
    // source edge list (so the daemon can compact).
    let store = extmem::device::TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, "serverperf").expect("serialize").persist();
    let index_path =
        std::env::temp_dir().join(format!("hopdb-serverperf-{}.idx", std::process::id()));
    std::fs::copy(&staged, &index_path).expect("stage index");
    std::fs::remove_file(staged).ok();
    std::fs::write(format!("{}.rank", index_path.to_string_lossy()), ranking.to_sidecar_bytes())
        .expect("write sidecar");
    let graph_path =
        std::env::temp_dir().join(format!("hopdb-serverperf-{}.txt", std::process::id()));
    let graph_file = std::fs::File::create(&graph_path).expect("create edge list");
    sfgraph::io::write_edge_list(&g, std::io::BufWriter::new(graph_file)).expect("write edge list");

    let wal_dir = durability
        .map(|_| std::env::temp_dir().join(format!("hopdb-serverperf-{}-wal", std::process::id())));
    if let Some(dir) = &wal_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    let config = ServerConfig {
        backend,
        threads,
        batch_threads: 1,
        source_graph: Some(graph_path.clone()),
        compact_threshold: 0, // compaction fires on demand, below
        wal_dir: wal_dir.clone(),
        durability: durability.unwrap_or(hopdb_server::wal::Durability::Batch),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
    let addr = handle.local_addr();
    eprintln!("  daemon on {addr}");

    // Correctness gate before any timing: wire answers (original id
    // space, via the sidecar) must be bit-identical to the in-process
    // flat index (rank space).
    let sweep = bench::query_pairs(&relabeled, 8_192, 0xC0FFEE);
    let ranked_sweep: Vec<(VertexId, VertexId)> =
        sweep.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();
    let expect = flat.query_many(&ranked_sweep, 0);
    let mut checker = Client::connect(addr).expect("connect");
    let mut served = Vec::with_capacity(sweep.len());
    for chunk in sweep.chunks(batch.max(1)) {
        served.extend(checker.query(chunk).expect("sweep query"));
    }
    assert_eq!(served, expect, "wire-served distances diverge from FlatIndex::query_many");
    drop(checker);
    eprintln!("  answers bit-identical to FlatIndex on {} pairs", sweep.len());

    // A fixed deterministic edge pool for the write mix: unique pairs
    // so the overlay log dedups to at most the pool size. Kept small —
    // overlay query cost grows with the affected set, and the bench
    // should measure the serving stack under writes, not drown in a
    // deliberately bloated overlay.
    let update_pool = update_edge_pool(n, 16, 0xDEC0DE);

    // Size the replay pool relative to the batch so the rotating-window
    // arithmetic in `measure` always has room (pool > batch).
    let pairs = bench::query_pairs(&relabeled, 65_536.max(batch * 8), 0xBEEF);
    // Warm up connections, caches, and the accept path.
    measure(addr, &pairs, 1, batch, requests_per_conn / 4 + 1, pipeline, 0, 0, &update_pool);
    let mut runs = vec![
        measure(addr, &pairs, 1, batch, requests_per_conn, pipeline, slow_conns, 0, &update_pool),
        measure(
            addr,
            &pairs,
            conns,
            batch,
            requests_per_conn,
            pipeline,
            slow_conns,
            0,
            &update_pool,
        ),
    ];
    if update_conns > 0 {
        // Third run: same fast fleet, now with live writes mixed in —
        // the p99 here is the "query latency under writes" number.
        runs.push(measure(
            addr,
            &pairs,
            conns,
            batch,
            requests_per_conn,
            pipeline,
            slow_conns,
            update_conns,
            &update_pool,
        ));
    }
    for run in &runs {
        eprintln!(
            "  {} conn(s): {:>10.0} pairs/s   p50 {:>7.1} µs   p99 {:>7.1} µs   \
             ({} requests, {} slow, {} update frames over {} writers)",
            run.conns,
            run.qps,
            run.p50_us,
            run.p99_us,
            run.requests,
            run.slow_requests,
            run.update_frames,
            run.update_conns,
        );
    }

    // Compaction-under-load gate: promote a compaction while a fleet
    // keeps firing; every response must match the from-scratch build of
    // the mutated graph — served both by the overlay (before) and the
    // fresh frozen generation (after), with no drops in between.
    let compaction_verified = if update_conns > 0 {
        verify_compaction_under_load(addr, &g, &update_pool, &sweep, conns.max(2), batch);
        true
    } else {
        false
    };

    let run_json = |r: &Run| {
        format!(
            concat!(
                r#"{{"conns":{},"qps":{:.0},"p50_us":{:.1},"p99_us":{:.1},"#,
                r#""requests":{},"slow_requests":{},"update_conns":{},"update_frames":{}}}"#
            ),
            r.conns,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.requests,
            r.slow_requests,
            r.update_conns,
            r.update_frames
        )
    };
    let runs_json: Vec<String> = runs.iter().map(run_json).collect();
    let json = format!(
        concat!(
            r#"{{"workload":{{"model":"glp","vertices":{},"density":{},"seed":42}},"#,
            r#""scale":"{:?}","cores":{},"backend":"{}","server_threads":{},"batch":{},"#,
            r#""pipeline":{},"slow_conns":{},"update_conns":{},"durability":"{}","#,
            r#""compaction_under_load_verified":{},"#,
            r#""index":{{"entries":{},"resident_bytes":{}}},"#,
            r#""runs":[{}]}}"#
        ),
        n,
        density,
        scale,
        cores,
        format!("{backend:?}").to_lowercase(),
        threads,
        batch,
        pipeline,
        slow_conns,
        update_conns,
        durability.map_or_else(|| "disabled".to_string(), |d| d.to_string()),
        compaction_verified,
        index.total_entries(),
        flat.resident_bytes(),
        runs_json.join(","),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");

    handle.shutdown();
    std::fs::remove_file(&index_path).ok();
    std::fs::remove_file(format!("{}.rank", index_path.to_string_lossy())).ok();
    std::fs::remove_file(&graph_path).ok();
    if let Some(dir) = &wal_dir {
        std::fs::remove_dir_all(dir).ok();
    }

    let mut failed = false;
    if let Some(want) = min_qps {
        let got = runs[1].qps;
        if got < want {
            eprintln!("QPS regression: {got:.0} pairs/s at {conns} conns, gate wants {want:.0}");
            failed = true;
        } else {
            eprintln!("qps ok: {got:.0} pairs/s at {conns} conns (gate {want:.0})");
        }
    }
    if let Some(want) = max_p99_us {
        let got = runs[1].p99_us;
        if got > want {
            eprintln!("p99 regression: {got:.1} µs at {conns} conns, gate allows {want:.1}");
            failed = true;
        } else {
            eprintln!("p99 ok: {got:.1} µs at {conns} conns (gate {want:.1})");
        }
    }
    if let Some(want) = max_write_p99_us {
        // The under-writes run is the last one pushed (guaranteed to
        // exist by the update_conns > 0 assert at parse time).
        let got = runs.last().expect("under-writes run").p99_us;
        if got > want {
            eprintln!("write-path p99 regression: {got:.1} µs under writes, gate allows {want:.1}");
            failed = true;
        } else {
            eprintln!("write-path p99 ok: {got:.1} µs under writes (gate {want:.1})");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
