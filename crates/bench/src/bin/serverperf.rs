//! Serving-path performance snapshot (the CI `server-perf` artifact).
//!
//! Boots a real `hopdb-server` daemon on an ephemeral loopback port
//! over a GLP-built index, then drives it with fast clients — each one
//! TCP connection issuing `--batch`-pair query frames, keeping
//! `--pipeline` requests in flight (1 = classic closed loop) — at 1
//! connection and at `--conns` connections. `--slow-conns` adds
//! background connections that trickle single-pair queries with
//! 10–20 ms pauses, so the latency gate reflects a mixed fleet: slow
//! pollers must not drag the fast clients' tail.
//!
//! Before any timing, every served answer is asserted bit-identical to
//! in-process `FlatIndex::query_many`.
//!
//! The snapshot lands in `BENCH_server.json`: pairs/second (QPS) and
//! request latency percentiles (p50/p99) per connection count, plus
//! the serving backend and pipelining depth.
//!
//! Gates (any failure exits non-zero):
//!
//! * `--min-qps N` — pairs/second floor at `--conns` connections.
//! * `--max-p99-us N` — fast-client p99 request latency ceiling (µs)
//!   at `--conns` connections, measured with the slow fleet running.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin serverperf -- \
//!     --backend epoll --conns 4 --batch 256 --pipeline 8 --slow-conns 2 \
//!     --min-qps 150000 --max-p99-us 50000 -o BENCH_server.json
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bench::Scale;
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig};
use hopdb_server::client::Session;
use hopdb_server::{serve, Backend, Client, ServerConfig};
use hoplabels::disk::DiskIndex;
use hoplabels::flat::FlatIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::VertexId;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// One connection-count measurement.
struct Run {
    conns: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    requests: usize,
    slow_requests: usize,
}

/// Drive the server from `conns` fast connections (each keeping
/// `pipeline` requests in flight) while `slow_conns` background
/// connections trickle single-pair queries with 10–20 ms pauses.
/// Percentiles cover the fast clients only — the gate is about slow
/// pollers not wrecking the fast tail, not about the pollers
/// themselves.
fn measure(
    addr: std::net::SocketAddr,
    pairs: &[(VertexId, VertexId)],
    conns: usize,
    batch: usize,
    requests_per_conn: usize,
    pipeline: usize,
    slow_conns: usize,
) -> Run {
    let stop_slow = AtomicBool::new(false);
    let started = Instant::now();
    let (mut latencies, wall, slow_requests) = std::thread::scope(|scope| {
        let slow: Vec<_> = (0..slow_conns)
            .map(|c| {
                let stop_slow = &stop_slow;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("slow connect");
                    let (mut count, mut i) = (0usize, c * 13);
                    while !stop_slow.load(Ordering::Relaxed) {
                        let (s, t) = pairs[i % pairs.len()];
                        client.query_one(s, t).expect("slow query");
                        count += 1;
                        std::thread::sleep(Duration::from_millis(10 + (i % 11) as u64));
                        i += 7;
                    }
                    count
                })
            })
            .collect();

        let fast: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut session = Session::connect(addr).expect("connect");
                    let mut window: VecDeque<(hopdb_server::client::Ticket, Instant)> =
                        VecDeque::with_capacity(pipeline);
                    let mut lat = Vec::with_capacity(requests_per_conn);
                    let redeem =
                        |session: &mut Session, window: &mut VecDeque<_>, lat: &mut Vec<f64>| {
                            let (ticket, t0): (_, Instant) = window.pop_front().unwrap();
                            let got = session.wait(ticket).expect("wait");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                            assert_eq!(got.len(), batch);
                        };
                    for r in 0..requests_per_conn {
                        // Each request replays a rotating window so
                        // different connections touch different pairs.
                        let at = (c * 31 + r * batch) % (pairs.len() - batch);
                        window.push_back((
                            session.submit(&pairs[at..at + batch]).expect("submit"),
                            Instant::now(),
                        ));
                        if window.len() >= pipeline.max(1) {
                            redeem(&mut session, &mut window, &mut lat);
                        }
                    }
                    while !window.is_empty() {
                        redeem(&mut session, &mut window, &mut lat);
                    }
                    lat
                })
            })
            .collect();

        let latencies: Vec<f64> =
            fast.into_iter().flat_map(|h| h.join().expect("fast client")).collect();
        let wall = started.elapsed().as_secs_f64();
        stop_slow.store(true, Ordering::Relaxed);
        let slow_requests = slow.into_iter().map(|h| h.join().expect("slow client")).sum();
        (latencies, wall, slow_requests)
    });
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total_requests = conns * requests_per_conn;
    Run {
        conns,
        qps: (total_requests * batch) as f64 / wall,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        requests: total_requests,
        slow_requests,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let out_path = arg_value(&args, "-o").unwrap_or_else(|| "BENCH_server.json".to_string());
    let backend: Backend = arg_value(&args, "--backend")
        .map_or_else(Backend::default, |v| v.parse().expect("bad --backend"));
    let threads: usize =
        arg_value(&args, "--threads").map_or(4, |v| v.parse().expect("bad --threads"));
    let conns: usize =
        arg_value(&args, "--conns").map_or(threads, |v| v.parse().expect("bad --conns"));
    let batch: usize = arg_value(&args, "--batch").map_or(256, |v| v.parse().expect("bad --batch"));
    assert!(batch >= 1, "--batch must be at least 1 pair");
    let pipeline: usize =
        arg_value(&args, "--pipeline").map_or(1, |v| v.parse().expect("bad --pipeline"));
    assert!(pipeline >= 1, "--pipeline must be at least 1 request in flight");
    let slow_conns: usize =
        arg_value(&args, "--slow-conns").map_or(0, |v| v.parse().expect("bad --slow-conns"));
    let min_qps: Option<f64> =
        arg_value(&args, "--min-qps").map(|v| v.parse().expect("bad --min-qps"));
    let max_p99_us: Option<f64> =
        arg_value(&args, "--max-p99-us").map(|v| v.parse().expect("bad --max-p99-us"));
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let (n, density, requests_per_conn) = match scale {
        Scale::Small => (4_000, 3.0, 400),
        Scale::Medium => (12_000, 4.0, 1_500),
        Scale::Large => (40_000, 4.0, 4_000),
    };
    eprintln!(
        "serverperf: GLP n={n} d={density} (scale {scale:?}, {cores} cores, backend {backend:?}, \
         {threads} server threads, batch {batch}, pipeline {pipeline}, {slow_conns} slow conns)"
    );
    let g = glp(&GlpParams::with_density(n, density, 42));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(0));
    let flat = FlatIndex::from_index(&index);

    // Serialize the index to a standalone file the daemon boots from.
    let store = extmem::device::TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, "serverperf").expect("serialize").persist();
    let index_path =
        std::env::temp_dir().join(format!("hopdb-serverperf-{}.idx", std::process::id()));
    std::fs::copy(&staged, &index_path).expect("stage index");
    std::fs::remove_file(staged).ok();

    let config = ServerConfig { backend, threads, batch_threads: 1, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
    let addr = handle.local_addr();
    eprintln!("  daemon on {addr}");

    // Correctness gate before any timing: wire answers must be
    // bit-identical to the in-process flat index.
    let sweep = bench::query_pairs(&relabeled, 8_192, 0xC0FFEE);
    let expect = flat.query_many(&sweep, 0);
    let mut checker = Client::connect(addr).expect("connect");
    let mut served = Vec::with_capacity(sweep.len());
    for chunk in sweep.chunks(batch.max(1)) {
        served.extend(checker.query(chunk).expect("sweep query"));
    }
    assert_eq!(served, expect, "wire-served distances diverge from FlatIndex::query_many");
    drop(checker);
    eprintln!("  answers bit-identical to FlatIndex on {} pairs", sweep.len());

    // Size the replay pool relative to the batch so the rotating-window
    // arithmetic in `measure` always has room (pool > batch).
    let pairs = bench::query_pairs(&relabeled, 65_536.max(batch * 8), 0xBEEF);
    // Warm up connections, caches, and the accept path.
    measure(addr, &pairs, 1, batch, requests_per_conn / 4 + 1, pipeline, 0);
    let runs = [
        measure(addr, &pairs, 1, batch, requests_per_conn, pipeline, slow_conns),
        measure(addr, &pairs, conns, batch, requests_per_conn, pipeline, slow_conns),
    ];
    for run in &runs {
        eprintln!(
            "  {} conn(s): {:>10.0} pairs/s   p50 {:>7.1} µs   p99 {:>7.1} µs   \
             ({} requests, {} slow)",
            run.conns, run.qps, run.p50_us, run.p99_us, run.requests, run.slow_requests
        );
    }

    let run_json = |r: &Run| {
        format!(
            concat!(
                r#"{{"conns":{},"qps":{:.0},"p50_us":{:.1},"p99_us":{:.1},"#,
                r#""requests":{},"slow_requests":{}}}"#
            ),
            r.conns, r.qps, r.p50_us, r.p99_us, r.requests, r.slow_requests
        )
    };
    let json = format!(
        concat!(
            r#"{{"workload":{{"model":"glp","vertices":{},"density":{},"seed":42}},"#,
            r#""scale":"{:?}","cores":{},"backend":"{}","server_threads":{},"batch":{},"#,
            r#""pipeline":{},"slow_conns":{},"#,
            r#""index":{{"entries":{},"resident_bytes":{}}},"#,
            r#""runs":[{},{}]}}"#
        ),
        n,
        density,
        scale,
        cores,
        format!("{backend:?}").to_lowercase(),
        threads,
        batch,
        pipeline,
        slow_conns,
        index.total_entries(),
        flat.resident_bytes(),
        run_json(&runs[0]),
        run_json(&runs[1]),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");

    handle.shutdown();
    std::fs::remove_file(&index_path).ok();

    let mut failed = false;
    if let Some(want) = min_qps {
        let got = runs[1].qps;
        if got < want {
            eprintln!("QPS regression: {got:.0} pairs/s at {conns} conns, gate wants {want:.0}");
            failed = true;
        } else {
            eprintln!("qps ok: {got:.0} pairs/s at {conns} conns (gate {want:.0})");
        }
    }
    if let Some(want) = max_p99_us {
        let got = runs[1].p99_us;
        if got > want {
            eprintln!("p99 regression: {got:.1} µs at {conns} conns, gate allows {want:.1}");
            failed = true;
        } else {
            eprintln!("p99 ok: {got:.1} µs at {conns} conns (gate {want:.1})");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
