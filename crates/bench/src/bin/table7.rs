#![forbid(unsafe_code)]
//! Table 7 — evidence for small hitting sets / small hub dimension:
//! number of iterations, average label entries per vertex, and the
//! share of top-ranked vertices needed to cover 70% / 80% / 90% of all
//! label entries.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin table7
//! ```

use bench::{suite, Kind, Scale};
use hopdb::{build_prelabeled, HopDbConfig};
use hoplabels::stats::CoverageStats;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn main() {
    let scale = Scale::from_env();
    println!("Table 7 reproduction (scale: {scale:?})\n");
    println!(
        "{:<12} {:>10} {:>12} | {:>8} {:>8} {:>8}",
        "graph", "iterations", "avg |label|", "70%", "80%", "90%"
    );

    let mut last_kind: Option<Kind> = None;
    for w in suite(scale) {
        if last_kind != Some(w.kind) {
            println!("-- {} --", w.kind.header());
            last_kind = Some(w.kind);
        }
        let rank_by = if w.graph.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
        let ranking = rank_vertices(&w.graph, &rank_by);
        let relabeled = relabel_by_rank(&w.graph, &ranking);
        let (index, stats) = build_prelabeled(&relabeled, &HopDbConfig::default());
        let cov = CoverageStats::from_index(&index);
        println!(
            "{:<12} {:>10} {:>12.1} | {:>7.2}% {:>7.2}% {:>7.2}%",
            w.name,
            stats.num_iterations(),
            index.avg_label_size(),
            cov.percent_vertices_for_coverage(0.7),
            cov.percent_vertices_for_coverage(0.8),
            cov.percent_vertices_for_coverage(0.9),
        );
    }
    println!("\nSmall percentages confirm Assumptions 1–3: a handful of top-degree");
    println!("vertices hits the vast majority of shortest paths (small hub dimension).");
}
