#![forbid(unsafe_code)]
//! Figure 8 — label coverage by top-ranked vertices: for each graph,
//! the share of all label entries covered by the top x% of vertices,
//! sampled over x ∈ (0, 1%].
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin fig8
//! ```

use bench::{suite, threads_from_env, Scale};
use hopdb::{build_prelabeled, HopDbConfig};
use hoplabels::stats::CoverageStats;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn main() {
    let scale = Scale::from_env();
    let threads = threads_from_env();
    println!("Figure 8 reproduction (scale: {scale:?}, build threads: {threads})");
    println!("series: label coverage (%) at top-vertex shares up to 1%\n");

    let shares = 10; // sample points in (0, 1%]
    print!("{:<12}", "graph");
    for i in 1..=shares {
        print!(" {:>7.1}%", i as f64 / 10.0);
    }
    println!();

    for w in suite(scale) {
        let rank_by = if w.graph.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
        let ranking = rank_vertices(&w.graph, &rank_by);
        let relabeled = relabel_by_rank(&w.graph, &ranking);
        let (index, _) =
            build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(threads));
        let cov = CoverageStats::from_index(&index);
        let curve = cov.coverage_curve(0.01, shares);
        print!("{:<12}", w.name);
        for (_, pct) in curve {
            print!(" {pct:>7.1} ");
        }
        println!();
    }
    println!("\nPaper shape: curves jump above 60–90% within the first 0.1–1% of");
    println!("vertices — the top-degree hubs cover nearly all label entries.");
}
