#![forbid(unsafe_code)]
//! Query-path performance snapshot (the CI `query-perf` artifact).
//!
//! Builds one GLP workload, freezes the index into
//! `hoplabels::flat::FlatIndex`, and measures — best wall clock of
//! `--repeat` rounds each —
//!
//! * nested `LabelIndex::query` ns/query (the construction layout),
//! * flat `FlatIndex::query` ns/query (the serving layout),
//! * batched `FlatIndex::query_many` QPS at 1 thread and at
//!   `--threads` workers,
//!
//! asserting along the way that every answer is bit-identical across
//! the nested index, the flat index, and every batched run. Results
//! land in a machine-readable `BENCH_query.json` next to CI's
//! `BENCH_build.json`, including both `entry_bytes` and
//! `resident_bytes` so the memory numbers match what the serving layout
//! actually holds.
//!
//! Gates (any failure exits non-zero):
//!
//! * `--min-qps N` — single-thread flat QPS floor;
//! * `--min-flat-speedup R` — flat must be ≥ R× faster than nested;
//! * `--min-batch-scaling R:T` — `query_many` at T threads must reach
//!   ≥ R× the 1-thread QPS (skipped with a warning when the machine
//!   has fewer than T cores).
//!
//! ```text
//! BENCH_SCALE=medium cargo run --release -p bench --bin queryperf -- \
//!     --threads 4 --min-qps 200000 --min-flat-speedup 1.5 \
//!     --min-batch-scaling 3:4 -o BENCH_query.json
//! ```

use std::time::Instant;

use bench::Scale;
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig};
use hoplabels::flat::FlatIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::{Dist, VertexId};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Best-of-`repeat` wall clock for `runs` full passes over the pairs;
/// returns seconds per pass.
fn best_secs(repeat: usize, mut pass: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let started = Instant::now();
        pass();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let out_path = arg_value(&args, "-o").unwrap_or_else(|| "BENCH_query.json".to_string());
    let threads: usize =
        arg_value(&args, "--threads").map_or(4, |v| v.parse().expect("bad --threads"));
    let repeat: usize =
        arg_value(&args, "--repeat").map_or(5, |v| v.parse().expect("bad --repeat"));
    let min_qps: Option<f64> =
        arg_value(&args, "--min-qps").map(|v| v.parse().expect("bad --min-qps"));
    let min_flat_speedup: Option<f64> =
        arg_value(&args, "--min-flat-speedup").map(|v| v.parse().expect("bad --min-flat-speedup"));
    let min_batch_scaling: Option<(f64, usize)> =
        arg_value(&args, "--min-batch-scaling").map(|v| {
            let (r, t) =
                v.split_once(':').expect("--min-batch-scaling wants RATIO:THREADS, e.g. 3:4");
            (r.parse().expect("bad ratio"), t.parse().expect("bad thread count"))
        });
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // The 20k-vertex GLP bench graph (the criterion query bench's
    // workload) at medium scale; small stays CI-friendly.
    let (n, density, seed) = match scale {
        Scale::Small => (6_000, 4.0, 42),
        Scale::Medium => (20_000, 4.0, 42),
        Scale::Large => (80_000, 4.0, 42),
    };
    eprintln!("queryperf: GLP n={n} d={density} seed={seed} (scale {scale:?}, {cores} cores)");
    let g = glp(&GlpParams::with_density(n, density, seed));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default().with_parallelism(0));
    let flat = FlatIndex::from_index(&index);

    // Correctness sweep over a large random pair set: flat and batched
    // answers must be bit-identical to the nested index on every pair.
    let sweep: Vec<(VertexId, VertexId)> = bench::query_pairs(&relabeled, 200_000, 0xC0FFEE);
    let expect: Vec<Dist> = sweep.iter().map(|&(s, t)| index.query(s, t)).collect();
    let got: Vec<Dist> = sweep.iter().map(|&(s, t)| flat.query(s, t)).collect();
    assert_eq!(expect, got, "FlatIndex::query diverges from LabelIndex::query");
    for t in [1, threads.max(1)] {
        assert_eq!(
            flat.query_many(&sweep, t),
            expect,
            "query_many at {t} threads diverges from the nested index"
        );
    }
    eprintln!("  answers bit-identical across nested/flat/batched on {} pairs", sweep.len());

    // Timing uses the criterion query bench's pair-set size (4096,
    // cycled), so the snapshot measures the join paths under the same
    // cache conditions as `cargo bench -p bench --bench query`; the
    // batch measurements replay the same pairs as one large slice.
    let pairs: Vec<(VertexId, VertexId)> = bench::query_pairs(&relabeled, 4_096, 0xC0FFEE);
    let batch: Vec<(VertexId, VertexId)> =
        std::iter::repeat_with(|| pairs.iter().copied()).take(16).flatten().collect();

    // Interleave the four measurements round-robin and keep each
    // method's best round: a noisy-neighbour stall on a shared runner
    // then degrades one *round*, not one *method*, so the reported
    // ratios compare like with like. Each single-pair round makes many
    // passes over the pair set — enough for caches and TLB to reach
    // their steady state, which is what a serving process sees.
    const PASSES: usize = 64;
    let single_queries = (PASSES * pairs.len()) as f64;
    let (mut nested_s, mut flat_s) = (f64::INFINITY, f64::INFINITY);
    let (mut batch1_s, mut batchn_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeat.max(1) {
        nested_s = nested_s.min(best_secs(1, || {
            let mut acc = 0u64;
            for _ in 0..PASSES {
                for &(s, t) in &pairs {
                    acc = acc.wrapping_add(index.query(s, t) as u64);
                }
            }
            std::hint::black_box(acc);
        }));
        flat_s = flat_s.min(best_secs(1, || {
            let mut acc = 0u64;
            for _ in 0..PASSES {
                for &(s, t) in &pairs {
                    acc = acc.wrapping_add(flat.query(s, t) as u64);
                }
            }
            std::hint::black_box(acc);
        }));
        batch1_s = batch1_s.min(best_secs(1, || {
            std::hint::black_box(flat.query_many(&batch, 1));
        }));
        batchn_s = batchn_s.min(best_secs(1, || {
            std::hint::black_box(flat.query_many(&batch, threads));
        }));
    }

    let nested_ns = nested_s * 1e9 / single_queries;
    let flat_ns = flat_s * 1e9 / single_queries;
    let flat_speedup = nested_s / flat_s;
    let qps1 = batch.len() as f64 / batch1_s;
    let qpsn = batch.len() as f64 / batchn_s;
    let batch_scaling = qpsn / qps1;
    eprintln!(
        "  nested: {nested_ns:.1} ns/query   flat: {flat_ns:.1} ns/query   ({flat_speedup:.2}x)"
    );
    eprintln!(
        "  batched: {qps1:.0} qps @1 thread   {qpsn:.0} qps @{threads} threads   ({batch_scaling:.2}x)"
    );

    let json = format!(
        concat!(
            r#"{{"workload":{{"model":"glp","vertices":{},"density":{},"seed":{}}},"#,
            r#""scale":"{:?}","cores":{},"pairs":{},"batch_pairs":{},"sweep_pairs":{},"repeat":{},"#,
            r#""index":{{"entries":{},"entry_bytes":{},"resident_bytes":{},"flat_resident_bytes":{}}},"#,
            r#""single":{{"nested_ns_per_query":{:.2},"flat_ns_per_query":{:.2},"flat_speedup":{:.3}}},"#,
            r#""batched":{{"threads":{},"qps_1_thread":{:.0},"qps_threads":{:.0},"scaling":{:.3}}}}}"#
        ),
        n,
        density,
        seed,
        scale,
        cores,
        pairs.len(),
        batch.len(),
        sweep.len(),
        repeat,
        index.total_entries(),
        index.entry_bytes(),
        index.resident_bytes(),
        flat.resident_bytes(),
        nested_ns,
        flat_ns,
        flat_speedup,
        threads,
        qps1,
        qpsn,
        batch_scaling,
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if let Some(want) = min_qps {
        if qps1 < want {
            eprintln!("QPS regression: {qps1:.0} single-thread qps, gate wants {want:.0}");
            failed = true;
        } else {
            eprintln!("qps ok: {qps1:.0} (gate {want:.0})");
        }
    }
    if let Some(want) = min_flat_speedup {
        if flat_speedup < want {
            eprintln!(
                "flat speedup regression: {flat_speedup:.2}x vs nested, gate wants {want:.2}x"
            );
            failed = true;
        } else {
            eprintln!("flat speedup ok: {flat_speedup:.2}x (gate {want:.2}x)");
        }
    }
    if let Some((want, at)) = min_batch_scaling {
        if at != threads {
            eprintln!("--min-batch-scaling threads {at} must match --threads {threads}");
            failed = true;
        } else if cores < at {
            eprintln!("batch scaling gate skipped: {cores} cores, gate wants {at} threads");
        } else if batch_scaling < want {
            eprintln!("batch scaling regression: {batch_scaling:.2}x at {at} threads, gate wants {want:.2}x");
            failed = true;
        } else {
            eprintln!("batch scaling ok: {batch_scaling:.2}x at {at} threads (gate {want:.2}x)");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
