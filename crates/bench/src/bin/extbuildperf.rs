#![forbid(unsafe_code)]
//! Threaded external-build perf snapshot (the CI `external-io` perf
//! artifact).
//!
//! Runs the §4 disk-based engine on one directed and one undirected GLP
//! stand-in at each requested thread count, asserts the serialized
//! indexes are byte-identical and the `extmem` I/O counters do not move
//! across thread counts, and writes `BENCH_extbuild.json`. The
//! `--min-speedup RATIO:THREADS` gate (applied to the *directed*
//! workload, whose out-/in-side joins parallelize structurally) fails
//! the run when the threaded build is slower than promised — and skips
//! with a warning when the machine has fewer cores than the gate asks
//! for, since timeslicing one core cannot demonstrate overlap. Every
//! thread count is built `--repeat` times and the best wall clock kept,
//! so one noisy-neighbour stall on a shared runner does not fail the
//! gate.
//!
//! ```text
//! BENCH_SCALE=medium cargo run --release -p bench --bin extbuildperf -- \
//!     --threads-list 1,2,4 --min-speedup 1.3:4 -o BENCH_extbuild.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bench::Scale;
use extmem::ExtMemConfig;
use graphgen::{glp, orient_scale_free, GlpParams};
use hopdb::external::build_external;
use hopdb::HopDbConfig;
use hoplabels::disk::DiskIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::Graph;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Serialize an index through the one on-disk code path.
fn index_bytes(index: &hoplabels::LabelIndex) -> Vec<u8> {
    let store = extmem::device::TempStore::new().expect("temp store");
    let disk = DiskIndex::create(index, &store, "extbuildperf").expect("serialize");
    let path = disk.persist();
    let bytes = std::fs::read(&path).expect("read serialized index");
    std::fs::remove_file(path).ok();
    bytes
}

struct Measurement {
    threads: usize,
    elapsed_s: f64,
    io: (u64, u64, u64, u64),
    sort_runs: u64,
    merge_passes: u64,
    iterations: u32,
    final_entries: u64,
}

/// What the first (usually 1-thread) build produced; every other thread
/// count must reproduce it exactly.
struct Baseline {
    bytes: Vec<u8>,
    io: (u64, u64, u64, u64),
    sort_runs: u64,
    merge_passes: u64,
}

/// Build `g` externally at every thread count; panic on any divergence
/// in serialized bytes or I/O accounting.
fn run_workload(
    name: &str,
    g: &Graph,
    rank_by: &RankBy,
    ext: &ExtMemConfig,
    threads_list: &[usize],
    repeat: usize,
) -> Vec<Measurement> {
    let ranking = rank_vertices(g, rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let mut baseline: Option<Baseline> = None;
    let mut measurements = Vec::new();
    for &threads in threads_list {
        let cfg = HopDbConfig::default().with_parallelism(threads);
        let mut best: Option<(f64, _)> = None;
        for _ in 0..repeat.max(1) {
            let started = Instant::now();
            let result = build_external(&relabeled, &cfg, ext).expect("external build");
            let elapsed = started.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
                best = Some((elapsed, result));
            }
        }
        let (elapsed_s, result) = best.expect("at least one repeat");
        let bytes = index_bytes(&result.index);
        match &baseline {
            None => {
                baseline = Some(Baseline {
                    bytes,
                    io: result.io,
                    sort_runs: result.sort_runs,
                    merge_passes: result.merge_passes,
                })
            }
            Some(expect) => {
                assert_eq!(
                    bytes, expect.bytes,
                    "{name}: serialized index at {threads} threads differs from {} threads",
                    threads_list[0]
                );
                assert_eq!(
                    (result.io, result.sort_runs, result.merge_passes),
                    (expect.io, expect.sort_runs, expect.merge_passes),
                    "{name}: I/O accounting at {threads} threads differs from {} threads",
                    threads_list[0]
                );
            }
        }
        eprintln!(
            "  {name} threads={threads}: {elapsed_s:.3}s (best of {repeat}), \
             {} entries, {} iterations",
            result.stats.final_entries,
            result.stats.num_iterations()
        );
        measurements.push(Measurement {
            threads,
            elapsed_s,
            io: result.io,
            sort_runs: result.sort_runs,
            merge_passes: result.merge_passes,
            iterations: result.stats.num_iterations(),
            final_entries: result.stats.final_entries,
        });
    }
    measurements
}

fn json_runs(runs: &[Measurement]) -> String {
    let mut s = String::from("[");
    for (i, m) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (read_bytes, write_bytes, read_blocks, write_blocks) = m.io;
        let _ = write!(
            s,
            r#"{{"threads":{},"elapsed_s":{:.6},"read_bytes":{read_bytes},"write_bytes":{write_bytes},"read_blocks":{read_blocks},"write_blocks":{write_blocks},"sort_runs":{},"merge_passes":{},"iterations":{},"final_entries":{}}}"#,
            m.threads, m.elapsed_s, m.sort_runs, m.merge_passes, m.iterations, m.final_entries
        );
    }
    s.push(']');
    s
}

fn json_speedups(runs: &[Measurement]) -> String {
    let base = runs.iter().find(|m| m.threads == 1).map(|m| m.elapsed_s);
    let mut s = String::from("{");
    if let Some(base) = base {
        let mut first = true;
        for m in runs {
            if m.threads == 1 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, r#""{}":{:.3}"#, m.threads, base / m.elapsed_s);
        }
    }
    s.push('}');
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let threads_list: Vec<usize> = arg_value(&args, "--threads-list")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("--threads-list wants comma-separated integers"))
        .collect();
    let out_path = arg_value(&args, "-o").unwrap_or_else(|| "BENCH_extbuild.json".to_string());
    let repeat: usize =
        arg_value(&args, "--repeat").map_or(2, |v| v.parse().expect("bad --repeat"));
    let min_speedup: Option<(f64, usize)> = arg_value(&args, "--min-speedup").map(|v| {
        let (r, t) = v.split_once(':').expect("--min-speedup wants RATIO:THREADS, e.g. 1.3:4");
        (r.parse().expect("bad ratio"), t.parse().expect("bad thread count"))
    });
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Sizes chosen so the M = 16 Ki record budget really spills (the
    // traffic is an order of magnitude above it) without making the CI
    // job crawl; the directed case carries the speedup gate.
    let (und_n, dir_n) = match scale {
        Scale::Small => (900, 700),
        Scale::Medium => (6_000, 8_000),
        Scale::Large => (16_000, 20_000),
    };
    let ext = ExtMemConfig { memory_records: 1 << 14, block_bytes: 4 << 10 };
    eprintln!(
        "extbuildperf: GLP und n={und_n} / dir n={dir_n} (scale {scale:?}, {cores} cores, \
         M={} records, B={} B)",
        ext.memory_records, ext.block_bytes
    );

    let dir = orient_scale_free(&glp(&GlpParams::with_density(dir_n, 2.5, 13)), 0.25, 13);
    let und = glp(&GlpParams::with_density(und_n, 3.0, 7));
    let dir_runs =
        run_workload("directed", &dir, &RankBy::DegreeProduct, &ext, &threads_list, repeat);
    let und_runs = run_workload("undirected", &und, &RankBy::Degree, &ext, &threads_list, repeat);

    let json = format!(
        r#"{{"scale":"{scale:?}","cores":{cores},"memory_records":{},"block_bytes":{},"directed":{{"vertices":{dir_n},"runs":{},"speedup_vs_1_thread":{}}},"undirected":{{"vertices":{und_n},"runs":{},"speedup_vs_1_thread":{}}}}}"#,
        ext.memory_records,
        ext.block_bytes,
        json_runs(&dir_runs),
        json_speedups(&dir_runs),
        json_runs(&und_runs),
        json_speedups(&und_runs),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");

    if let Some((want, at)) = min_speedup {
        let Some(base) = dir_runs.iter().find(|m| m.threads == 1) else {
            eprintln!("--min-speedup needs threads=1 in --threads-list");
            std::process::exit(1);
        };
        let Some(gated) = dir_runs.iter().find(|m| m.threads == at) else {
            eprintln!("--min-speedup needs threads={at} in --threads-list");
            std::process::exit(1);
        };
        if cores < at {
            eprintln!("speedup gate skipped: machine has {cores} cores, gate wants {at} threads");
            return;
        }
        let got = base.elapsed_s / gated.elapsed_s;
        if got < want {
            eprintln!(
                "external build speedup regression: {got:.2}x at {at} threads, \
                 gate wants {want:.2}x (directed workload)"
            );
            std::process::exit(1);
        }
        eprintln!("external build speedup ok: {got:.2}x at {at} threads (gate {want:.2}x)");
    }
}
