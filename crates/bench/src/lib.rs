#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # bench — the evaluation harness (Section 8)
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! full experiment index):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table6` | performance comparison: index size / build time / memory & disk query time for BIDIJ, IS-Label, PLL, HCL*, HopDb(+BP) |
//! | `table7` | iterations, avg label size, top-vertex coverage (small hitting sets) |
//! | `table8` | Hop-Doubling vs Hop-Stepping vs Hybrid (+ ranking & switch-point ablations) |
//! | `fig8`   | label coverage vs top-ranked vertex share curves |
//! | `fig9`   | GLP scalability sweeps: density and vertex count |
//! | `fig10`  | per-iteration growing/pruning factors and size ratios |
//!
//! Real datasets are replaced by GLP-generated scale-free graphs with
//! matched shapes (DESIGN.md §2); every binary honours the
//! `BENCH_SCALE` environment variable (`small` / `medium` / `large`,
//! default `medium`) so the whole suite can run as a smoke test or as a
//! full evaluation.

use std::time::{Duration, Instant};

use graphgen::{glp, orient_scale_free, with_random_weights, GlpParams};
use sfgraph::{Graph, VertexId, INF_DIST};

/// Workload category, mirroring Table 6's row groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Undirected unweighted (Delicious/BTC/Skitter stand-ins).
    UndirectedUnweighted,
    /// Directed unweighted (wiki/Baidu/gplus stand-ins).
    DirectedUnweighted,
    /// GLP synthetic sweep graphs (syn1–syn6 stand-ins).
    Synthetic,
    /// Undirected weighted (rating-network stand-ins).
    UndirectedWeighted,
}

impl Kind {
    /// Section header used in printed tables.
    pub fn header(self) -> &'static str {
        match self {
            Kind::UndirectedUnweighted => "undirected unweighted",
            Kind::DirectedUnweighted => "directed unweighted",
            Kind::Synthetic => "synthetic (GLP)",
            Kind::UndirectedWeighted => "undirected weighted",
        }
    }
}

/// One benchmark graph.
pub struct Workload {
    /// Stable name used in tables and EXPERIMENTS.md.
    pub name: String,
    /// Row group.
    pub kind: Kind,
    /// The graph itself.
    pub graph: Graph,
}

/// Harness scale, from the `BENCH_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke test.
    Small,
    /// Minutes-long default.
    Medium,
    /// The full evaluation.
    Large,
}

impl Scale {
    /// Read `BENCH_SCALE` (default medium).
    pub fn from_env() -> Scale {
        match std::env::var("BENCH_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("large") => Scale::Large,
            _ => Scale::Medium,
        }
    }

    /// Multiplier applied to base workload sizes.
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Medium => 4,
            Scale::Large => 16,
        }
    }
}

/// The Table 6 / Table 7 workload suite.
pub fn suite(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    let mut v = Vec::new();
    // Undirected unweighted: increasing size, paper-default density.
    for (i, (n, d)) in
        [(5_000 * f, 2.1), (12_000 * f, 3.0), (25_000 * f, 6.0)].into_iter().enumerate()
    {
        v.push(Workload {
            name: format!("u{}k-d{}", n / 1000, d as u32),
            kind: Kind::UndirectedUnweighted,
            graph: glp(&GlpParams::with_density(n, d, 100 + i as u64)),
        });
    }
    // Directed unweighted: oriented GLP with 25% reciprocity.
    for (i, (n, d)) in [(5_000 * f, 2.5), (12_000 * f, 5.0)].into_iter().enumerate() {
        let und = glp(&GlpParams::with_density(n, d, 200 + i as u64));
        v.push(Workload {
            name: format!("d{}k-d{}", n / 1000, d as u32),
            kind: Kind::DirectedUnweighted,
            graph: orient_scale_free(&und, 0.25, 200 + i as u64),
        });
    }
    // Synthetic: the syn-style denser graphs.
    for (i, (n, d)) in [(4_000 * f, 10.0), (10_000 * f, 16.0)].into_iter().enumerate() {
        v.push(Workload {
            name: format!("syn{}k-d{}", n / 1000, d as u32),
            kind: Kind::Synthetic,
            graph: glp(&GlpParams::with_density(n, d, 300 + i as u64)),
        });
    }
    // Undirected weighted: rating-network stand-ins, weights 1..=10.
    for (i, (n, d)) in [(5_000 * f, 3.0), (10_000 * f, 8.0)].into_iter().enumerate() {
        let und = glp(&GlpParams::with_density(n, d, 400 + i as u64));
        v.push(Workload {
            name: format!("w{}k-d{}", n / 1000, d as u32),
            kind: Kind::UndirectedWeighted,
            graph: with_random_weights(&und, 1, 10, 400 + i as u64),
        });
    }
    v
}

/// Build-worker threads from the `BENCH_THREADS` environment variable
/// (default 1 = sequential; 0 = all cores). Every harness builds the
/// bit-identical index regardless — the knob only changes build time,
/// so Fig. 8 / Table 6 runs can report scaling at 1/2/4/8 threads.
pub fn threads_from_env() -> usize {
    std::env::var("BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Deterministic query pairs (uniform random vertices).
pub fn query_pairs(g: &Graph, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices().max(1) as u64;
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..count).map(|_| ((next() % n) as VertexId, (next() % n) as VertexId)).collect()
}

/// Time a batch of queries; returns (µs per query, answered count).
pub fn time_queries(
    pairs: &[(VertexId, VertexId)],
    mut f: impl FnMut(VertexId, VertexId) -> u32,
) -> (f64, usize) {
    let start = Instant::now();
    let mut reachable = 0usize;
    for &(s, t) in pairs {
        if f(s, t) != INF_DIST {
            reachable += 1;
        }
    }
    let elapsed = start.elapsed();
    (elapsed.as_secs_f64() * 1e6 / pairs.len().max(1) as f64, reachable)
}

/// Human-readable MB.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Human-readable seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Right-align an optional value, rendering `None` as an em-dash — the
/// DNF cells of Table 6 (the paper's 24-hour timeouts).
pub fn fmt_opt<T: std::fmt::Display>(v: Option<T>, width: usize) -> String {
    match v {
        Some(v) => format!("{v:>width$}"),
        None => format!("{:>width$}", "—"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_has_all_kinds() {
        let suite = suite(Scale::Small);
        for kind in [
            Kind::UndirectedUnweighted,
            Kind::DirectedUnweighted,
            Kind::Synthetic,
            Kind::UndirectedWeighted,
        ] {
            assert!(suite.iter().any(|w| w.kind == kind), "missing {kind:?}");
        }
        for w in &suite {
            assert!(w.graph.num_vertices() > 0);
            assert_eq!(w.kind == Kind::DirectedUnweighted, w.graph.is_directed());
            assert_eq!(w.kind == Kind::UndirectedWeighted, w.graph.is_weighted());
        }
    }

    #[test]
    fn threads_env_default_is_sequential() {
        // The suite must not depend on the environment of the test
        // runner; BENCH_THREADS is unset in CI's tier-1 job.
        if std::env::var("BENCH_THREADS").is_err() {
            assert_eq!(threads_from_env(), 1);
        }
    }

    #[test]
    fn query_pairs_are_deterministic_and_in_range() {
        let g = graphgen::star(100);
        let a = query_pairs(&g, 50, 9);
        let b = query_pairs(&g, 50, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, t)| (s as usize) < 100 && (t as usize) < 100));
    }

    #[test]
    fn time_queries_counts_reachable() {
        let pairs = vec![(0, 1), (1, 2), (2, 3)];
        let (_, reachable) = time_queries(&pairs, |s, t| if s + t < 4 { 1 } else { INF_DIST });
        assert_eq!(reachable, 2);
    }
}
