//! Shared I/O accounting in the Aggarwal–Vitter model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic I/O counters shared by every file of one external computation.
///
/// Counts both raw byte traffic and the number of I/O *operations*;
/// [`IoStats::read_blocks`]/[`IoStats::write_blocks`] convert bytes to
/// block I/Os for a given block size `B`, matching the paper's
/// `scan(N) = Θ(N/B)` reporting.
#[derive(Debug, Default)]
pub struct IoStats {
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    sort_runs: AtomicU64,
    merge_passes: AtomicU64,
}

impl IoStats {
    /// Fresh shared counter.
    pub fn shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Record a read of `bytes` bytes.
    #[inline]
    pub fn record_read(&self, bytes: u64) {
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a write of `bytes` bytes.
    #[inline]
    pub fn record_write(&self, bytes: u64) {
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one sorted run spilled by an external sorter.
    #[inline]
    pub fn record_sort_run(&self) {
        self.sort_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one k-way merge pass over a batch of runs.
    #[inline]
    pub fn record_merge_pass(&self) {
        self.merge_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed)
    }

    /// Number of read operations issued.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Number of write operations issued.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Sorted runs spilled by external sorters — with
    /// [`IoStats::merge_passes`], the `sort(N)` term of the §4 cost
    /// model (`O(N/B · log_{M/B}(N/B))` block I/Os per sort).
    pub fn sort_runs(&self) -> u64 {
        self.sort_runs.load(Ordering::Relaxed)
    }

    /// K-way merge passes performed by external sorters.
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes.load(Ordering::Relaxed)
    }

    /// Read traffic in block I/Os of size `block_bytes` (ceiling).
    pub fn read_blocks(&self, block_bytes: usize) -> u64 {
        self.read_bytes().div_ceil(block_bytes as u64)
    }

    /// Write traffic in block I/Os of size `block_bytes` (ceiling).
    pub fn write_blocks(&self, block_bytes: usize) -> u64 {
        self.write_bytes().div_ceil(block_bytes as u64)
    }

    /// Total block I/Os (reads + writes).
    pub fn total_blocks(&self, block_bytes: usize) -> u64 {
        self.read_blocks(block_bytes) + self.write_blocks(block_bytes)
    }

    /// Snapshot all counters as `(read_bytes, write_bytes, read_ops, write_ops)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (self.read_bytes(), self.write_bytes(), self.read_ops(), self.write_ops())
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.sort_runs.store(0, Ordering::Relaxed);
        self.merge_passes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_blocks() {
        let s = IoStats::default();
        s.record_read(100);
        s.record_read(1000);
        s.record_write(512);
        assert_eq!(s.read_bytes(), 1100);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.write_bytes(), 512);
        assert_eq!(s.read_blocks(512), 3); // ceil(1100/512)
        assert_eq!(s.write_blocks(512), 1);
        assert_eq!(s.total_blocks(512), 4);
    }

    #[test]
    fn reset_clears() {
        let s = IoStats::default();
        s.record_write(10);
        s.record_sort_run();
        s.record_merge_pass();
        assert_eq!((s.sort_runs(), s.merge_passes()), (1, 1));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
        assert_eq!((s.sort_runs(), s.merge_passes()), (0, 0));
    }

    #[test]
    fn shared_across_threads() {
        let s = IoStats::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_bytes(), 32_000);
        assert_eq!(s.read_ops(), 4_000);
    }
}
