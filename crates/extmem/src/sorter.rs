//! External merge sort with an optional combiner.
//!
//! Classic two-phase sort in the Aggarwal–Vitter model: quicksorted runs
//! of at most `M` records are spilled to counted files, then merged with
//! a k-way heap. An optional *combiner* merges consecutive records with
//! equal keys during both phases — the label engines use it to keep one
//! minimum-distance candidate per `(vertex, pivot)` pair, which is the
//! "avoid duplicates" step of Algorithm 2.
//!
//! [`ExternalSorter::with_background_spill`] moves the spill work
//! (quicksort + run write) onto a dedicated worker thread fed through a
//! bounded channel, so the producer keeps streaming records while
//! previous batches sort and hit the disk. The spilled runs — and
//! therefore the final merged output, the spill counters, and the byte
//! traffic — are identical to the inline path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::codec::Record;
use crate::device::TempStore;
use crate::run::{Run, RunReader, RunWriter};
use crate::ExtMemConfig;

/// How many full buffers may queue for the background spill worker
/// before `push` blocks. Bounds the transient memory overshoot of the
/// pipelined path at `(SPILL_QUEUE_DEPTH + 2) × M` records: one buffer
/// filling, `SPILL_QUEUE_DEPTH` queued, one being sorted/written.
const SPILL_QUEUE_DEPTH: usize = 2;

/// Budgeted external sorter for ordered records.
///
/// ```
/// use extmem::{ExtMemConfig, ExternalSorter, LabelRecord};
/// use extmem::device::TempStore;
///
/// let store = TempStore::new()?;
/// let mut sorter = ExternalSorter::new(&store, ExtMemConfig::tiny());
/// for key in (0..1000u32).rev() {
///     sorter.push(LabelRecord::new(key, 0, 1))?;
/// }
/// let sorted = sorter.finish()?;
/// assert_eq!(sorted.len(), 1000);
/// assert_eq!(sorted.read_all()?[0].key, 0);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ExternalSorter<'s, R: Record + Ord> {
    store: &'s TempStore,
    config: ExtMemConfig,
    buffer: Vec<R>,
    runs: Vec<Run<R>>,
    /// Merge two records that compare equal under the grouping key;
    /// `None` keeps duplicates.
    combiner: Option<fn(R, R) -> R>,
    /// Grouping: records are considered duplicates when `group_eq` says
    /// so. Defaults to full equality of the `Ord` key.
    group_eq: fn(&R, &R) -> bool,
    /// Spill on a background worker (started lazily at the first spill,
    /// so sorters whose input fits in memory never spawn a thread).
    background_spill: bool,
    /// The running worker, once the first spill started it.
    spill_worker: Option<SpillWorker<R>>,
}

/// Background run-formation worker: owns a [`crate::device::StoreHandle`]
/// so it can spill runs while the producer thread keeps pushing.
struct SpillWorker<R: Record + Ord> {
    tx: Option<SyncSender<Vec<R>>>,
    recycle: Receiver<Vec<R>>,
    handle: Option<JoinHandle<std::io::Result<Vec<Run<R>>>>>,
}

impl<R: Record + Ord> SpillWorker<R> {
    /// Close the feed channel, join the worker, and return its runs in
    /// spill order.
    fn finish(mut self) -> std::io::Result<Vec<Run<R>>> {
        drop(self.tx.take());
        match self.handle.take().expect("worker joined once").join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("background spill worker panicked")),
        }
    }
}

impl<R: Record + Ord> Drop for SpillWorker<R> {
    fn drop(&mut self) {
        // Abandoned sorter: close the channel and wait the worker out so
        // it never outlives the TempStore it writes into.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<'s, R: Record + Ord> ExternalSorter<'s, R> {
    /// New sorter spilling into `store` under `config`'s budget.
    pub fn new(store: &'s TempStore, config: ExtMemConfig) -> ExternalSorter<'s, R> {
        let cap = config.memory_records.max(2);
        ExternalSorter {
            store,
            config,
            buffer: Vec::with_capacity(cap.min(1 << 22)),
            runs: Vec::new(),
            combiner: None,
            group_eq: |a, b| a.cmp(b).is_eq(),
            background_spill: false,
            spill_worker: None,
        }
    }

    /// Install a combiner: consecutive records for which `group_eq` holds
    /// are folded with `combine`, keeping one survivor.
    pub fn with_combiner(mut self, group_eq: fn(&R, &R) -> bool, combine: fn(R, R) -> R) -> Self {
        self.group_eq = group_eq;
        self.combiner = Some(combine);
        self
    }

    /// Move run formation onto a background worker thread.
    ///
    /// Full buffers travel through a channel bounded at
    /// `SPILL_QUEUE_DEPTH` (2); the worker quicksorts, combines, and writes
    /// each one while the producer keeps pushing. Call before the first
    /// [`ExternalSorter::push`] (after combiner setup) — the worker
    /// snapshots the combiner configuration when it starts. The thread is
    /// spawned lazily at the first spill, so inputs that fit in memory
    /// never pay for one. The sorted output, the run boundaries, and
    /// every I/O counter are identical to the inline path; only
    /// wall-clock overlap changes.
    pub fn with_background_spill(mut self) -> Self {
        self.background_spill = true;
        self
    }

    fn start_spill_worker(&mut self) {
        let (tx, rx) = sync_channel::<Vec<R>>(SPILL_QUEUE_DEPTH);
        let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<Vec<R>>();
        let store = self.store.handle();
        let combiner = self.combiner;
        let group_eq = self.group_eq;
        let buffer_records = self.io_buffer_records();
        let handle = std::thread::spawn(move || -> std::io::Result<Vec<Run<R>>> {
            let mut runs = Vec::new();
            while let Ok(mut buf) = rx.recv() {
                buf.sort_unstable();
                if let Some(combine) = combiner {
                    combine_in_place(&mut buf, group_eq, combine);
                }
                let mut w = RunWriter::new(store.create("sort-run")?, buffer_records);
                for &r in &buf {
                    w.push(r)?;
                }
                runs.push(w.finish()?);
                store.stats().record_sort_run();
                buf.clear();
                // Hand the emptied buffer back; a gone producer is fine.
                let _ = recycle_tx.send(buf);
            }
            Ok(runs)
        });
        self.spill_worker =
            Some(SpillWorker { tx: Some(tx), recycle: recycle_rx, handle: Some(handle) });
    }

    /// Add a record, spilling a sorted run when the budget fills.
    pub fn push(&mut self, record: R) -> std::io::Result<()> {
        self.buffer.push(record);
        if self.buffer.len() >= self.config.memory_records.max(2) {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        if self.background_spill && self.spill_worker.is_none() {
            self.start_spill_worker();
        }
        if let Some(worker) = &mut self.spill_worker {
            let replacement = worker
                .recycle
                .try_recv()
                .unwrap_or_else(|_| Vec::with_capacity(self.buffer.capacity()));
            let full = std::mem::replace(&mut self.buffer, replacement);
            if worker.tx.as_ref().expect("open while worker lives").send(full).is_ok() {
                return Ok(());
            }
            // The worker hung up early: it hit an I/O error. Join it and
            // surface that error to the producer.
            let worker = self.spill_worker.take().expect("checked above");
            return match worker.finish() {
                Err(e) => Err(e),
                Ok(_) => Err(std::io::Error::other("spill worker exited unexpectedly")),
            };
        }
        self.buffer.sort_unstable();
        if let Some(combine) = self.combiner {
            combine_in_place(&mut self.buffer, self.group_eq, combine);
        }
        let buffer_records = self.io_buffer_records();
        let mut w = RunWriter::new(self.store.create("sort-run")?, buffer_records);
        for &r in &self.buffer {
            w.push(r)?;
        }
        self.runs.push(w.finish()?);
        self.buffer.clear();
        self.store.stats().record_sort_run();
        Ok(())
    }

    fn io_buffer_records(&self) -> usize {
        (self.config.block_bytes / R::SIZE).max(16)
    }

    /// Finish sorting: returns one globally sorted (and combined) run.
    pub fn finish(mut self) -> std::io::Result<Run<R>> {
        // Fast path: everything fit in memory — still emit a run so the
        // caller's interface is uniform, and skip spawning a worker the
        // single final flush could never overlap with.
        if self.spill_worker.is_none() {
            self.background_spill = false;
        }
        self.spill()?;
        if let Some(worker) = self.spill_worker.take() {
            self.runs.extend(worker.finish()?);
        }
        let buffer_records = self.io_buffer_records();
        if self.runs.len() <= 1 {
            return match self.runs.pop() {
                Some(run) => Ok(run),
                None => {
                    RunWriter::<R>::new(self.store.create("sort-out")?, buffer_records).finish()
                }
            };
        }
        // K-way merge. Fan-in is bounded by the memory budget: each open
        // reader needs one block of buffer.
        let max_fanin = (self.config.memory_records / buffer_records).max(2);
        while self.runs.len() > 1 {
            let take = self.runs.len().min(max_fanin);
            let batch: Vec<Run<R>> = self.runs.drain(..take).collect();
            let merged =
                merge_runs(self.store, batch, buffer_records, self.combiner, self.group_eq)?;
            self.runs.push(merged);
        }
        Ok(self.runs.pop().expect("at least one run"))
    }
}

fn combine_in_place<R: Record>(
    buf: &mut Vec<R>,
    group_eq: fn(&R, &R) -> bool,
    combine: fn(R, R) -> R,
) {
    let mut write = 0usize;
    for read in 0..buf.len() {
        if write > 0 && group_eq(&buf[write - 1], &buf[read]) {
            buf[write - 1] = combine(buf[write - 1], buf[read]);
        } else {
            buf[write] = buf[read];
            write += 1;
        }
    }
    buf.truncate(write);
}

/// Merge already-sorted runs into one sorted run.
pub fn merge_runs<R: Record + Ord>(
    store: &TempStore,
    runs: Vec<Run<R>>,
    buffer_records: usize,
    combiner: Option<fn(R, R) -> R>,
    group_eq: fn(&R, &R) -> bool,
) -> std::io::Result<Run<R>> {
    store.stats().record_merge_pass();
    let mut readers: Vec<RunReader<R>> = Vec::with_capacity(runs.len());
    for run in runs {
        readers.push(run.reader(buffer_records)?);
    }
    let mut heap: BinaryHeap<Reverse<(R, usize)>> = BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(rec) = r.next_record()? {
            heap.push(Reverse((rec, i)));
        }
    }
    let mut out = RunWriter::<R>::new(store.create("merge-out")?, buffer_records);
    let mut pending: Option<R> = None;
    while let Some(Reverse((rec, i))) = heap.pop() {
        if let Some(next) = readers[i].next_record()? {
            heap.push(Reverse((next, i)));
        }
        match (pending.take(), combiner) {
            (None, _) => pending = Some(rec),
            (Some(prev), Some(combine)) if group_eq(&prev, &rec) => {
                pending = Some(combine(prev, rec));
            }
            (Some(prev), _) => {
                out.push(prev)?;
                pending = Some(rec);
            }
        }
    }
    if let Some(prev) = pending {
        out.push(prev)?;
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LabelRecord;

    fn sort_all(records: Vec<LabelRecord>, config: ExtMemConfig) -> Vec<LabelRecord> {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, config);
        for r in records {
            s.push(r).unwrap();
        }
        s.finish().unwrap().read_all().unwrap()
    }

    #[test]
    fn sorts_in_memory_path() {
        let recs = vec![
            LabelRecord::new(3, 0, 0),
            LabelRecord::new(1, 5, 0),
            LabelRecord::new(1, 2, 0),
            LabelRecord::new(2, 9, 0),
        ];
        let sorted = sort_all(recs.clone(), ExtMemConfig::default());
        let mut expect = recs;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sorts_with_spills() {
        // Pseudo-random order, tiny budget => many runs + multi-pass merge.
        let mut recs = Vec::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            recs.push(LabelRecord::new((x >> 33) as u32 % 997, (x >> 17) as u32 % 991, 1));
        }
        let sorted = sort_all(recs.clone(), ExtMemConfig::tiny());
        let mut expect = recs;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn combiner_keeps_min_dist_per_pair() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny()).with_combiner(
            |a: &LabelRecord, b: &LabelRecord| (a.key, a.pivot) == (b.key, b.pivot),
            |a, b| if a.dist <= b.dist { a } else { b },
        );
        // Push each (key, pivot) pair three times with different dists,
        // interleaved so duplicates land in different spill runs.
        for round in [5u32, 1, 3] {
            for k in 0..500u32 {
                s.push(LabelRecord::new(k % 50, k / 50, round + k % 2)).unwrap();
            }
        }
        let out = s.finish().unwrap().read_all().unwrap();
        assert_eq!(out.len(), 500);
        for r in &out {
            assert!(r.dist <= 2, "kept non-minimal dist {r:?}");
        }
        // Sorted and unique by (key, pivot).
        for w in out.windows(2) {
            assert!((w[0].key, w[0].pivot) < (w[1].key, w[1].pivot));
        }
    }

    #[test]
    fn empty_input_yields_empty_run() {
        let sorted = sort_all(Vec::new(), ExtMemConfig::tiny());
        assert!(sorted.is_empty());
    }

    #[test]
    fn background_spill_matches_inline_exactly() {
        // Same pseudo-random stream through both paths: identical sorted
        // output, identical spill/merge/byte counters.
        let mut recs = Vec::new();
        let mut x = 99u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            recs.push(LabelRecord::new((x >> 33) as u32 % 511, (x >> 17) as u32 % 509, 1));
        }
        let run_path = |background: bool| {
            let store = TempStore::new().unwrap();
            let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny()).with_combiner(
                |a: &LabelRecord, b: &LabelRecord| (a.key, a.pivot) == (b.key, b.pivot),
                |a, b| if a.dist <= b.dist { a } else { b },
            );
            if background {
                s = s.with_background_spill();
            }
            for &r in &recs {
                s.push(r).unwrap();
            }
            let out = s.finish().unwrap().read_all().unwrap();
            let st = store.stats();
            (out, st.sort_runs(), st.merge_passes(), st.read_bytes(), st.write_bytes())
        };
        let inline = run_path(false);
        let pipelined = run_path(true);
        assert_eq!(inline.0, pipelined.0, "sorted output diverged");
        assert_eq!(
            (inline.1, inline.2, inline.3, inline.4),
            (pipelined.1, pipelined.2, pipelined.3, pipelined.4),
            "I/O accounting diverged between inline and background spill"
        );
        assert!(inline.1 > 1, "workload must actually spill to exercise the worker");
    }

    #[test]
    fn background_spill_small_input_stays_in_memory_path() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::default()).with_background_spill();
        for i in (0..100u32).rev() {
            s.push(LabelRecord::new(i, 0, 0)).unwrap();
        }
        let out = s.finish().unwrap().read_all().unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dropping_background_sorter_joins_the_worker() {
        let store = TempStore::new().unwrap();
        {
            let mut s = ExternalSorter::<LabelRecord>::new(&store, ExtMemConfig::tiny())
                .with_background_spill();
            for i in 0..5_000u32 {
                s.push(LabelRecord::new(i, 0, 0)).unwrap();
            }
            // Dropped without finish: must not hang, leak, or outlive the
            // store (the Drop impl closes the channel and joins).
        }
        assert!(store.stats().sort_runs() > 0);
    }

    #[test]
    fn sort_and_merge_counters_are_recorded() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny());
        for i in 0..10_000u32 {
            s.push(LabelRecord::new(10_000 - i, 0, 0)).unwrap();
        }
        let _ = s.finish().unwrap();
        let stats = store.stats();
        let runs = stats.sort_runs();
        let memory = ExtMemConfig::tiny().memory_records as u64;
        assert!(runs >= 10_000 / memory, "tiny budget must spill: {runs} runs");
        assert!(stats.merge_passes() >= 1, "spilled runs need at least one merge pass");
    }

    #[test]
    fn io_traffic_is_recorded() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny());
        for i in 0..5_000u32 {
            s.push(LabelRecord::new(5_000 - i, 0, 0)).unwrap();
        }
        let run = s.finish().unwrap();
        assert_eq!(run.len(), 5_000);
        let stats = store.stats();
        // At minimum every record is written once during spill and once
        // during merge output.
        assert!(stats.write_bytes() >= 2 * 5_000 * LabelRecord::SIZE as u64);
        assert!(stats.read_bytes() > 0);
    }
}
