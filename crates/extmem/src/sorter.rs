//! External merge sort with an optional combiner.
//!
//! Classic two-phase sort in the Aggarwal–Vitter model: quicksorted runs
//! of at most `M` records are spilled to counted files, then merged with
//! a k-way heap. An optional *combiner* merges consecutive records with
//! equal keys during both phases — the label engines use it to keep one
//! minimum-distance candidate per `(vertex, pivot)` pair, which is the
//! "avoid duplicates" step of Algorithm 2.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::codec::Record;
use crate::device::TempStore;
use crate::run::{Run, RunReader, RunWriter};
use crate::ExtMemConfig;

/// Budgeted external sorter for ordered records.
///
/// ```
/// use extmem::{ExtMemConfig, ExternalSorter, LabelRecord};
/// use extmem::device::TempStore;
///
/// let store = TempStore::new()?;
/// let mut sorter = ExternalSorter::new(&store, ExtMemConfig::tiny());
/// for key in (0..1000u32).rev() {
///     sorter.push(LabelRecord::new(key, 0, 1))?;
/// }
/// let sorted = sorter.finish()?;
/// assert_eq!(sorted.len(), 1000);
/// assert_eq!(sorted.read_all()?[0].key, 0);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ExternalSorter<'s, R: Record + Ord> {
    store: &'s TempStore,
    config: ExtMemConfig,
    buffer: Vec<R>,
    runs: Vec<Run<R>>,
    /// Merge two records that compare equal under the grouping key;
    /// `None` keeps duplicates.
    combiner: Option<fn(R, R) -> R>,
    /// Grouping: records are considered duplicates when `group_eq` says
    /// so. Defaults to full equality of the `Ord` key.
    group_eq: fn(&R, &R) -> bool,
}

impl<'s, R: Record + Ord> ExternalSorter<'s, R> {
    /// New sorter spilling into `store` under `config`'s budget.
    pub fn new(store: &'s TempStore, config: ExtMemConfig) -> ExternalSorter<'s, R> {
        let cap = config.memory_records.max(2);
        ExternalSorter {
            store,
            config,
            buffer: Vec::with_capacity(cap.min(1 << 22)),
            runs: Vec::new(),
            combiner: None,
            group_eq: |a, b| a.cmp(b).is_eq(),
        }
    }

    /// Install a combiner: consecutive records for which `group_eq` holds
    /// are folded with `combine`, keeping one survivor.
    pub fn with_combiner(mut self, group_eq: fn(&R, &R) -> bool, combine: fn(R, R) -> R) -> Self {
        self.group_eq = group_eq;
        self.combiner = Some(combine);
        self
    }

    /// Add a record, spilling a sorted run when the budget fills.
    pub fn push(&mut self, record: R) -> std::io::Result<()> {
        self.buffer.push(record);
        if self.buffer.len() >= self.config.memory_records.max(2) {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.buffer.sort_unstable();
        if let Some(combine) = self.combiner {
            combine_in_place(&mut self.buffer, self.group_eq, combine);
        }
        let buffer_records = self.io_buffer_records();
        let mut w = RunWriter::new(self.store.create("sort-run")?, buffer_records);
        for &r in &self.buffer {
            w.push(r)?;
        }
        self.runs.push(w.finish()?);
        self.buffer.clear();
        self.store.stats().record_sort_run();
        Ok(())
    }

    fn io_buffer_records(&self) -> usize {
        (self.config.block_bytes / R::SIZE).max(16)
    }

    /// Finish sorting: returns one globally sorted (and combined) run.
    pub fn finish(mut self) -> std::io::Result<Run<R>> {
        // Fast path: everything fit in memory — still emit a run so the
        // caller's interface is uniform.
        self.spill()?;
        let buffer_records = self.io_buffer_records();
        if self.runs.len() <= 1 {
            return match self.runs.pop() {
                Some(run) => Ok(run),
                None => {
                    RunWriter::<R>::new(self.store.create("sort-out")?, buffer_records).finish()
                }
            };
        }
        // K-way merge. Fan-in is bounded by the memory budget: each open
        // reader needs one block of buffer.
        let max_fanin = (self.config.memory_records / buffer_records).max(2);
        while self.runs.len() > 1 {
            let take = self.runs.len().min(max_fanin);
            let batch: Vec<Run<R>> = self.runs.drain(..take).collect();
            let merged =
                merge_runs(self.store, batch, buffer_records, self.combiner, self.group_eq)?;
            self.runs.push(merged);
        }
        Ok(self.runs.pop().expect("at least one run"))
    }
}

fn combine_in_place<R: Record>(
    buf: &mut Vec<R>,
    group_eq: fn(&R, &R) -> bool,
    combine: fn(R, R) -> R,
) {
    let mut write = 0usize;
    for read in 0..buf.len() {
        if write > 0 && group_eq(&buf[write - 1], &buf[read]) {
            buf[write - 1] = combine(buf[write - 1], buf[read]);
        } else {
            buf[write] = buf[read];
            write += 1;
        }
    }
    buf.truncate(write);
}

/// Merge already-sorted runs into one sorted run.
pub fn merge_runs<R: Record + Ord>(
    store: &TempStore,
    runs: Vec<Run<R>>,
    buffer_records: usize,
    combiner: Option<fn(R, R) -> R>,
    group_eq: fn(&R, &R) -> bool,
) -> std::io::Result<Run<R>> {
    store.stats().record_merge_pass();
    let mut readers: Vec<RunReader<R>> = Vec::with_capacity(runs.len());
    for run in runs {
        readers.push(run.reader(buffer_records)?);
    }
    let mut heap: BinaryHeap<Reverse<(R, usize)>> = BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(rec) = r.next_record()? {
            heap.push(Reverse((rec, i)));
        }
    }
    let mut out = RunWriter::<R>::new(store.create("merge-out")?, buffer_records);
    let mut pending: Option<R> = None;
    while let Some(Reverse((rec, i))) = heap.pop() {
        if let Some(next) = readers[i].next_record()? {
            heap.push(Reverse((next, i)));
        }
        match (pending.take(), combiner) {
            (None, _) => pending = Some(rec),
            (Some(prev), Some(combine)) if group_eq(&prev, &rec) => {
                pending = Some(combine(prev, rec));
            }
            (Some(prev), _) => {
                out.push(prev)?;
                pending = Some(rec);
            }
        }
    }
    if let Some(prev) = pending {
        out.push(prev)?;
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LabelRecord;

    fn sort_all(records: Vec<LabelRecord>, config: ExtMemConfig) -> Vec<LabelRecord> {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, config);
        for r in records {
            s.push(r).unwrap();
        }
        s.finish().unwrap().read_all().unwrap()
    }

    #[test]
    fn sorts_in_memory_path() {
        let recs = vec![
            LabelRecord::new(3, 0, 0),
            LabelRecord::new(1, 5, 0),
            LabelRecord::new(1, 2, 0),
            LabelRecord::new(2, 9, 0),
        ];
        let sorted = sort_all(recs.clone(), ExtMemConfig::default());
        let mut expect = recs;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sorts_with_spills() {
        // Pseudo-random order, tiny budget => many runs + multi-pass merge.
        let mut recs = Vec::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            recs.push(LabelRecord::new((x >> 33) as u32 % 997, (x >> 17) as u32 % 991, 1));
        }
        let sorted = sort_all(recs.clone(), ExtMemConfig::tiny());
        let mut expect = recs;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn combiner_keeps_min_dist_per_pair() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny()).with_combiner(
            |a: &LabelRecord, b: &LabelRecord| (a.key, a.pivot) == (b.key, b.pivot),
            |a, b| if a.dist <= b.dist { a } else { b },
        );
        // Push each (key, pivot) pair three times with different dists,
        // interleaved so duplicates land in different spill runs.
        for round in [5u32, 1, 3] {
            for k in 0..500u32 {
                s.push(LabelRecord::new(k % 50, k / 50, round + k % 2)).unwrap();
            }
        }
        let out = s.finish().unwrap().read_all().unwrap();
        assert_eq!(out.len(), 500);
        for r in &out {
            assert!(r.dist <= 2, "kept non-minimal dist {r:?}");
        }
        // Sorted and unique by (key, pivot).
        for w in out.windows(2) {
            assert!((w[0].key, w[0].pivot) < (w[1].key, w[1].pivot));
        }
    }

    #[test]
    fn empty_input_yields_empty_run() {
        let sorted = sort_all(Vec::new(), ExtMemConfig::tiny());
        assert!(sorted.is_empty());
    }

    #[test]
    fn sort_and_merge_counters_are_recorded() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny());
        for i in 0..10_000u32 {
            s.push(LabelRecord::new(10_000 - i, 0, 0)).unwrap();
        }
        let _ = s.finish().unwrap();
        let stats = store.stats();
        let runs = stats.sort_runs();
        let memory = ExtMemConfig::tiny().memory_records as u64;
        assert!(runs >= 10_000 / memory, "tiny budget must spill: {runs} runs");
        assert!(stats.merge_passes() >= 1, "spilled runs need at least one merge pass");
    }

    #[test]
    fn io_traffic_is_recorded() {
        let store = TempStore::new().unwrap();
        let mut s = ExternalSorter::new(&store, ExtMemConfig::tiny());
        for i in 0..5_000u32 {
            s.push(LabelRecord::new(5_000 - i, 0, 0)).unwrap();
        }
        let run = s.finish().unwrap();
        assert_eq!(run.len(), 5_000);
        let stats = store.stats();
        // At minimum every record is written once during spill and once
        // during merge output.
        assert!(stats.write_bytes() >= 2 * 5_000 * LabelRecord::SIZE as u64);
        assert!(stats.read_bytes() > 0);
    }
}
