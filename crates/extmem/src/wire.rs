//! Total (panic-free) little-endian reads over untrusted byte slices.
//!
//! Every decoder in the workspace — the HOPQ framing in `server`, the
//! WAL replay, the `HOPSHRD1`/`HOPIDX01` sidecar parsers — consumes
//! bytes that arrived off a socket or a disk and must never panic, no
//! matter what those bytes say. These helpers make that property
//! local: each read returns `None` past the end of the slice instead
//! of relying on a length check somewhere earlier in the function, so
//! a refactor that drops the check turns into a handled decode error,
//! not a slice-index panic. The in-tree `tidy` panic-freedom pass
//! (`cargo run -p xtask -- tidy`) keeps the call sites honest.

/// The `N` bytes at `bytes[off..off + N]`, if fully in bounds.
#[inline]
pub fn array_at<const N: usize>(bytes: &[u8], off: usize) -> Option<[u8; N]> {
    bytes.get(off..)?.first_chunk::<N>().copied()
}

/// The byte at `off`, if in bounds.
#[inline]
pub fn u8_at(bytes: &[u8], off: usize) -> Option<u8> {
    bytes.get(off).copied()
}

/// The little-endian `u32` at `off`, if fully in bounds.
#[inline]
pub fn u32_at(bytes: &[u8], off: usize) -> Option<u32> {
    array_at(bytes, off).map(u32::from_le_bytes)
}

/// The little-endian `u64` at `off`, if fully in bounds.
#[inline]
pub fn u64_at(bytes: &[u8], off: usize) -> Option<u64> {
    array_at(bytes, off).map(u64::from_le_bytes)
}

/// Iterate `bytes` as consecutive little-endian `u32`s, ignoring any
/// trailing partial word (callers validate exact lengths up front and
/// use this only to walk a slice already known to be a whole number of
/// words — but nothing breaks if it is not).
pub fn u32s(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    bytes.chunks_exact(4).filter_map(|c| c.first_chunk::<4>()).map(|c| u32::from_le_bytes(*c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_inside_bounds() {
        let b = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 7];
        assert_eq!(u32_at(&b, 0), Some(1));
        assert_eq!(u32_at(&b, 4), Some(2));
        assert_eq!(u64_at(&b, 4), Some(2 | (7 << 56)));
        assert_eq!(u8_at(&b, 11), Some(7));
        assert_eq!(array_at::<2>(&b, 10), Some([0, 7]));
    }

    #[test]
    fn reads_past_the_end_are_none_not_panics() {
        let b = [0u8; 7];
        assert_eq!(u32_at(&b, 4), None);
        assert_eq!(u32_at(&b, usize::MAX), None);
        assert_eq!(u64_at(&b, 0), None);
        assert_eq!(u8_at(&b, 7), None);
        assert_eq!(array_at::<8>(&b, 0), None);
    }

    #[test]
    fn u32s_walks_whole_words_only() {
        let b = [1u8, 0, 0, 0, 2, 0, 0, 0, 99];
        assert_eq!(u32s(&b).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(u32s(&[]).count(), 0);
    }
}
