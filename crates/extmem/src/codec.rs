//! Fixed-size binary record encoding.
//!
//! All external files hold streams of fixed-size records so offsets are
//! computable and scans need no framing. The paper stores a 32-bit vertex
//! id and an 8-bit distance per entry; we keep 32-bit distances for
//! weighted-graph generality and accept the 12-byte record.

use bytes::{Buf, BufMut};

/// A fixed-size, plain-data record.
pub trait Record: Copy + Send + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Append the encoded record to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Decode one record from `buf` (which holds at least `SIZE` bytes).
    fn decode<B: Buf>(buf: &mut B) -> Self;
}

/// One label entry on disk: label set owner `key`, entry pivot, distance.
///
/// Sorting `LabelRecord`s by `(key, pivot)` groups each vertex's label
/// contiguously with pivots in rank order — exactly the layout the
/// generation and pruning joins of §4 need.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelRecord {
    /// The vertex whose label this entry belongs to.
    pub key: u32,
    /// The pivot vertex of the entry.
    pub pivot: u32,
    /// Path length covered by the entry.
    pub dist: u32,
}

impl LabelRecord {
    /// Construct a record.
    pub fn new(key: u32, pivot: u32, dist: u32) -> LabelRecord {
        LabelRecord { key, pivot, dist }
    }

    /// The record with key and pivot swapped — reindexes a label file
    /// from "sorted by owner" to "sorted by pivot" (the inverted label
    /// files of §4.1).
    pub fn inverted(self) -> LabelRecord {
        LabelRecord { key: self.pivot, pivot: self.key, dist: self.dist }
    }
}

impl Record for LabelRecord {
    const SIZE: usize = 12;

    #[inline]
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32_le(self.key);
        buf.put_u32_le(self.pivot);
        buf.put_u32_le(self.dist);
    }

    #[inline]
    fn decode<B: Buf>(buf: &mut B) -> Self {
        let key = buf.get_u32_le();
        let pivot = buf.get_u32_le();
        let dist = buf.get_u32_le();
        LabelRecord { key, pivot, dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = LabelRecord::new(7, 42, 123_456);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), LabelRecord::SIZE);
        let mut slice = &buf[..];
        assert_eq!(LabelRecord::decode(&mut slice), r);
    }

    #[test]
    fn ordering_groups_by_key_then_pivot() {
        let mut v =
            [LabelRecord::new(2, 1, 0), LabelRecord::new(1, 9, 0), LabelRecord::new(1, 3, 5)];
        v.sort();
        assert_eq!(v[0], LabelRecord::new(1, 3, 5));
        assert_eq!(v[1], LabelRecord::new(1, 9, 0));
        assert_eq!(v[2], LabelRecord::new(2, 1, 0));
    }

    #[test]
    fn inverted_swaps() {
        let r = LabelRecord::new(3, 8, 2).inverted();
        assert_eq!(r, LabelRecord::new(8, 3, 2));
    }
}
