#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # extmem — external-memory substrate
//!
//! The paper's index construction is disk-based: label files are scanned,
//! sorted, and joined under a memory budget `M` with block size `B`, and
//! costs are reported in the I/O model of Aggarwal & Vitter
//! (`scan(N) = Θ(N/B)`). This crate is that substrate:
//!
//! * [`stats::IoStats`] — shared atomic counters for bytes/operations,
//!   reporting block I/Os for a configurable block size;
//! * [`device::CountedFile`] — a real temp file whose sequential and
//!   random accesses all flow through the counters;
//! * [`codec::Record`] — fixed-size binary records (12-byte label
//!   records), encoded manually so on-disk layout is explicit;
//! * [`run::RunWriter`] / [`run::RunReader`] — buffered sequential record
//!   streams over counted files;
//! * [`sorter::ExternalSorter`] — budgeted run formation plus k-way merge
//!   with an optional combiner for equal keys (used to keep the minimum
//!   distance per `(vertex, pivot)` candidate), optionally pipelining the
//!   spill passes onto a background worker
//!   ([`sorter::ExternalSorter::with_background_spill`]);
//! * [`wire`] — total (panic-free) little-endian reads shared by every
//!   decoder in the workspace that consumes untrusted socket or disk
//!   bytes.
//!
//! Everything is deterministic and the simulated "disk" is honest: bytes
//! really hit the filesystem, so the I/O counts benchmarked by `bench`
//! reflect real traffic shapes.

pub mod codec;
pub mod device;
pub mod run;
pub mod sorter;
pub mod stats;
pub mod wire;

pub use codec::{LabelRecord, Record};
pub use device::{CountedFile, StoreHandle, TempStore};
pub use run::{Run, RunReader, RunWriter};
pub use sorter::ExternalSorter;
pub use stats::IoStats;

/// Configuration of the external-memory environment.
#[derive(Clone, Debug)]
pub struct ExtMemConfig {
    /// Memory budget in *records* available to any one operator
    /// (the paper's `M`).
    pub memory_records: usize,
    /// Block size in bytes (the paper's `B`).
    pub block_bytes: usize,
}

impl Default for ExtMemConfig {
    fn default() -> Self {
        // 1M records (~12 MB) and 64 KiB blocks: a deliberately small
        // "RAM" so laptop-scale experiments exercise the external paths.
        ExtMemConfig { memory_records: 1 << 20, block_bytes: 64 << 10 }
    }
}

impl ExtMemConfig {
    /// A tiny configuration that forces spilling even on test-sized
    /// inputs; used by tests and ablation benches.
    pub fn tiny() -> ExtMemConfig {
        ExtMemConfig { memory_records: 256, block_bytes: 512 }
    }
}
