//! Counted files and temp-file management.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::IoStats;

pub mod faults {
    //! Test-only I/O fault injection for crash-recovery hardening.
    //!
    //! Process-global countdown knobs that the counted-file write path
    //! consults on every operation. All default to "disarmed" and cost
    //! one relaxed atomic load per write/sync when disarmed, so the
    //! hooks are compiled unconditionally — tests (and only tests)
    //! arm them. Not for production use: arming a fault affects every
    //! [`CountedFile`](super::CountedFile) in the process.
    //!
    //! Three fault classes, each armed as "trigger after N successful
    //! operations of that class":
    //!
    //! * **short writes** — the next write after the countdown expires
    //!   persists only the first half of the buffer (at least 1 byte)
    //!   and then reports [`std::io::ErrorKind::WriteZero`], simulating
    //!   a torn append at an arbitrary byte boundary;
    //! * **fsync failures** — `sync_data` returns an error without
    //!   syncing, simulating a full disk or dying device;
    //! * **crash points** — the process calls [`std::process::abort`]
    //!   immediately *after* the Nth write completes, simulating a
    //!   power cut with everything up to that write already in the OS
    //!   page cache.

    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
    use std::sync::Mutex;

    /// Master switch; when false every hook is a single relaxed load.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Writes remaining before the next one is torn (-1 = disarmed).
    static SHORT_WRITE_AFTER: AtomicI64 = AtomicI64::new(-1);
    /// Syncs remaining before the next one fails (-1 = disarmed).
    static FSYNC_FAIL_AFTER: AtomicI64 = AtomicI64::new(-1);
    /// Writes remaining before the process aborts (-1 = disarmed).
    static CRASH_AFTER_WRITES: AtomicI64 = AtomicI64::new(-1);
    /// Only files whose path contains this substring are affected.
    static PATH_FILTER: Mutex<Option<String>> = Mutex::new(None);

    /// Disarm every fault and switch the hooks back to no-ops.
    pub fn reset() {
        SHORT_WRITE_AFTER.store(-1, Ordering::SeqCst);
        FSYNC_FAIL_AFTER.store(-1, Ordering::SeqCst);
        CRASH_AFTER_WRITES.store(-1, Ordering::SeqCst);
        *PATH_FILTER.lock().unwrap() = None;
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Restrict armed faults to files whose path contains `substr`
    /// (e.g. `"wal"` to fault only WAL appends while checkpoint and
    /// index writes proceed untouched). `None` faults every file.
    pub fn set_path_filter(substr: Option<&str>) {
        *PATH_FILTER.lock().unwrap() = substr.map(str::to_owned);
    }

    fn path_matches(path: &Path) -> bool {
        match &*PATH_FILTER.lock().unwrap() {
            None => true,
            Some(f) => path.to_string_lossy().contains(f.as_str()),
        }
    }

    /// Arm faults from `EXTMEM_FAULT_*` environment variables — the
    /// hook a parent test process uses to plant crash points inside a
    /// spawned daemon. Recognized: `EXTMEM_FAULT_CRASH_AFTER_WRITES=N`,
    /// `EXTMEM_FAULT_SHORT_WRITE_AFTER=N`,
    /// `EXTMEM_FAULT_FSYNC_FAIL_AFTER=N`,
    /// `EXTMEM_FAULT_PATH_FILTER=substr`. Unparsable values are
    /// ignored. Call once at process start; production binaries simply
    /// never set the variables.
    pub fn arm_from_env() {
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        if let Ok(f) = std::env::var("EXTMEM_FAULT_PATH_FILTER") {
            set_path_filter(Some(&f));
        }
        if let Some(n) = get("EXTMEM_FAULT_CRASH_AFTER_WRITES") {
            crash_after_writes(n);
        }
        if let Some(n) = get("EXTMEM_FAULT_SHORT_WRITE_AFTER") {
            short_write_after(n);
        }
        if let Some(n) = get("EXTMEM_FAULT_FSYNC_FAIL_AFTER") {
            fail_fsync_after(n);
        }
    }

    /// Tear the write that comes after `n` more successful writes
    /// (`n = 0` tears the very next write).
    pub fn short_write_after(n: u64) {
        SHORT_WRITE_AFTER.store(n as i64, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Fail the `sync_data` that comes after `n` more successful syncs.
    pub fn fail_fsync_after(n: u64) {
        FSYNC_FAIL_AFTER.store(n as i64, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Abort the process immediately after `n + 1` more writes land.
    pub fn crash_after_writes(n: u64) {
        CRASH_AFTER_WRITES.store(n as i64, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Hook: truncate `len` to the injected short length, or `None` to
    /// write the full buffer. Called before a counted write.
    pub(super) fn clamp_write(path: &Path, len: usize) -> Option<usize> {
        if !ENABLED.load(Ordering::Relaxed) || !path_matches(path) {
            return None;
        }
        if SHORT_WRITE_AFTER.load(Ordering::SeqCst) >= 0
            && SHORT_WRITE_AFTER.fetch_sub(1, Ordering::SeqCst) == 0
        {
            return Some((len / 2).clamp(1, len));
        }
        None
    }

    /// Hook: called after a counted write completes; may never return.
    pub(super) fn after_write(path: &Path) {
        if !ENABLED.load(Ordering::Relaxed) || !path_matches(path) {
            return;
        }
        if CRASH_AFTER_WRITES.load(Ordering::SeqCst) >= 0
            && CRASH_AFTER_WRITES.fetch_sub(1, Ordering::SeqCst) == 0
        {
            std::process::abort();
        }
    }

    /// Hook: whether the next `sync_data` should fail.
    pub(super) fn should_fail_fsync(path: &Path) -> bool {
        if !ENABLED.load(Ordering::Relaxed) || !path_matches(path) {
            return false;
        }
        FSYNC_FAIL_AFTER.load(Ordering::SeqCst) >= 0
            && FSYNC_FAIL_AFTER.fetch_sub(1, Ordering::SeqCst) == 0
    }
}

/// A directory of automatically named, automatically deleted temp files.
///
/// All files created through one `TempStore` share one [`IoStats`]
/// counter, so an external computation's total traffic is observable at
/// a single point.
pub struct TempStore {
    inner: Arc<StoreInner>,
    /// Remove the directory itself on drop (set when we created it).
    own_dir: bool,
}

/// Shared creation state: directory, file-name counter, I/O counters.
struct StoreInner {
    dir: PathBuf,
    counter: AtomicU64,
    stats: Arc<IoStats>,
}

impl StoreInner {
    fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("{tag}-{id}.bin"));
        let file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(&path)?;
        Ok(CountedFile { file, path, stats: Arc::clone(&self.stats), delete_on_drop: true })
    }
}

impl TempStore {
    /// Create a fresh store under the system temp directory.
    pub fn new() -> std::io::Result<TempStore> {
        let dir = std::env::temp_dir().join(format!(
            "extmem-{}-{:x}",
            std::process::id(),
            // Nanosecond timestamp keeps parallel test binaries apart.
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(TempStore {
            inner: Arc::new(StoreInner {
                dir,
                counter: AtomicU64::new(0),
                stats: IoStats::shared(),
            }),
            own_dir: true,
        })
    }

    /// Use an existing directory (not removed on drop).
    pub fn in_dir(dir: &Path) -> std::io::Result<TempStore> {
        std::fs::create_dir_all(dir)?;
        Ok(TempStore {
            inner: Arc::new(StoreInner {
                dir: dir.to_path_buf(),
                counter: AtomicU64::new(0),
                stats: IoStats::shared(),
            }),
            own_dir: false,
        })
    }

    /// The shared I/O counters for this store.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.stats)
    }

    /// Create a new empty counted file.
    pub fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        self.inner.create(tag)
    }

    /// An owned, `'static` handle that can create files in this store
    /// from another thread (same name counter, same I/O counters).
    ///
    /// The handle does not keep the directory alive: creating a file
    /// after the owning `TempStore` dropped fails with `NotFound`, so
    /// workers must be joined before the store goes away (the sorter's
    /// background spill does exactly that).
    pub fn handle(&self) -> StoreHandle {
        StoreHandle { inner: Arc::clone(&self.inner) }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        if self.own_dir {
            let _ = std::fs::remove_dir_all(&self.inner.dir);
        }
    }
}

/// Cloneable, thread-movable file-creation handle for a [`TempStore`].
#[derive(Clone)]
pub struct StoreHandle {
    inner: Arc<StoreInner>,
}

impl StoreHandle {
    /// Create a new empty counted file (see [`TempStore::create`]).
    pub fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        self.inner.create(tag)
    }

    /// The shared I/O counters of the underlying store.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.stats)
    }
}

/// A real file whose reads and writes are tallied in shared [`IoStats`].
pub struct CountedFile {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    delete_on_drop: bool,
}

impl CountedFile {
    /// Open an existing file at `path` as a counted file (not deleted on
    /// drop). Used to reopen persisted artifacts such as disk indexes.
    pub fn open_path(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Open an existing file read-only (not deleted on drop). Writes
    /// through the handle fail; use this for serving artifacts that may
    /// be deployed on read-only media or with read-only permissions.
    pub fn open_path_readonly(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Create (truncate) a counted file at an explicit path (not deleted
    /// on drop).
    pub fn create_path(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Filesystem path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared counters this file reports to.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Current file length in bytes.
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Keep the file on disk when this handle drops.
    pub fn persist(&mut self) {
        self.delete_on_drop = false;
    }

    /// Seek to an absolute offset.
    pub fn seek_to(&mut self, offset: u64) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        Ok(())
    }

    /// Positioned read (counted); returns bytes read.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
        self.seek_to(offset)?;
        let n = self.file.read(buf)?;
        self.stats.record_read(n as u64);
        Ok(n)
    }

    /// Positioned exact read (counted).
    pub fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.seek_to(offset)?;
        self.file.read_exact(buf)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    /// Flush file data to stable storage (`fdatasync`). Honors the
    /// [`faults`] injection hooks so recovery tests can simulate a
    /// failing device.
    pub fn sync_data(&self) -> std::io::Result<()> {
        if faults::should_fail_fsync(&self.path) {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        self.file.sync_data()
    }

    /// Truncate (or extend with zeros) the file to `len` bytes.
    pub fn set_len(&self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }

    /// Reopen a second independent handle onto the same file (own cursor,
    /// same counters). Used when one file is both merge input and random
    /// -access side of a join.
    pub fn reopen(&self) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        Ok(CountedFile {
            file,
            path: self.path.clone(),
            stats: Arc::clone(&self.stats),
            delete_on_drop: false,
        })
    }
}

impl Read for CountedFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.file.read(buf)?;
        self.stats.record_read(n as u64);
        Ok(n)
    }
}

impl Write for CountedFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(short) = faults::clamp_write(&self.path, buf.len()) {
            let n = self.file.write(&buf[..short])?;
            self.stats.record_write(n as u64);
            return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "injected short write"));
        }
        let n = self.file.write(buf)?;
        self.stats.record_write(n as u64);
        faults::after_write(&self.path);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

impl Drop for CountedFile {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_counts_traffic() {
        let store = TempStore::new().unwrap();
        let mut f = store.create("t").unwrap();
        f.write_all(b"hello world").unwrap();
        f.flush().unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        let stats = store.stats();
        assert_eq!(stats.write_bytes(), 11);
        assert_eq!(stats.read_bytes(), 5);
    }

    #[test]
    fn files_are_deleted_on_drop() {
        let store = TempStore::new().unwrap();
        let path;
        {
            let mut f = store.create("gone").unwrap();
            f.write_all(b"x").unwrap();
            path = f.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn reopen_shares_counters_but_not_cursor() {
        let store = TempStore::new().unwrap();
        let mut f = store.create("dup").unwrap();
        f.write_all(b"abcdef").unwrap();
        f.flush().unwrap();
        let mut g = f.reopen().unwrap();
        let mut buf = [0u8; 3];
        g.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        f.read_exact_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        assert_eq!(store.stats().read_bytes(), 6);
    }

    #[test]
    fn handle_creates_files_from_other_threads() {
        let store = TempStore::new().unwrap();
        let handle = store.handle();
        let worker = std::thread::spawn(move || {
            let mut f = handle.create("worker").unwrap();
            f.write_all(b"spill").unwrap();
            f.flush().unwrap();
            f.persist();
            f.path().to_path_buf()
        });
        let path = worker.join().unwrap();
        assert!(path.exists());
        assert_eq!(store.stats().write_bytes(), 5);
        // Names from handles and the store share one counter: no clashes.
        let f = store.create("worker").unwrap();
        assert_ne!(f.path(), path);
        let _ = std::fs::remove_file(path);
    }

    /// Serializes the tests that arm process-global fault state.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn injected_faults_tear_writes_and_fail_syncs() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let store = TempStore::new().unwrap();
        let mut f = store.create("faulted-target").unwrap();
        // Scope every armed fault to this one file so concurrently
        // running tests never consume (or suffer) the countdowns.
        faults::set_path_filter(Some("faulted-target"));

        faults::short_write_after(1);
        f.write_all(b"first").unwrap(); // countdown 1 -> 0
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        // Half the buffer (5 bytes) landed after the 5 from "first".
        assert_eq!(f.len().unwrap(), 10);
        // Disarmed after firing: the next write goes through whole.
        f.write_all(b"tail").unwrap();
        assert_eq!(f.len().unwrap(), 14);

        faults::fail_fsync_after(0);
        assert!(f.sync_data().is_err());
        f.sync_data().unwrap();

        faults::reset();
        f.write_all(b"clean").unwrap();
        f.sync_data().unwrap();
    }

    #[test]
    fn path_filter_spares_other_files() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let store = TempStore::new().unwrap();
        let hit = store.create("filter-hit").unwrap();
        let mut miss = store.create("filter-miss-other").unwrap();
        faults::set_path_filter(Some("filter-hit"));
        faults::fail_fsync_after(0);
        miss.sync_data().unwrap();
        miss.write_all(b"ok").unwrap();
        assert!(hit.sync_data().is_err());
        faults::reset();
        hit.sync_data().unwrap();
    }

    #[test]
    fn set_len_truncates_and_extends() {
        let store = TempStore::new().unwrap();
        let mut f = store.create("trunc").unwrap();
        f.write_all(b"abcdef").unwrap();
        f.set_len(3).unwrap();
        assert_eq!(f.len().unwrap(), 3);
        let mut buf = [0u8; 3];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        f.set_len(8).unwrap();
        assert_eq!(f.len().unwrap(), 8);
    }

    #[test]
    fn store_dir_removed_on_drop() {
        let dir;
        {
            let store = TempStore::new().unwrap();
            let mut f = store.create("d").unwrap();
            f.persist();
            f.write_all(b"z").unwrap();
            dir = f.path().parent().unwrap().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
