//! Counted files and temp-file management.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::IoStats;

/// A directory of automatically named, automatically deleted temp files.
///
/// All files created through one `TempStore` share one [`IoStats`]
/// counter, so an external computation's total traffic is observable at
/// a single point.
pub struct TempStore {
    inner: Arc<StoreInner>,
    /// Remove the directory itself on drop (set when we created it).
    own_dir: bool,
}

/// Shared creation state: directory, file-name counter, I/O counters.
struct StoreInner {
    dir: PathBuf,
    counter: AtomicU64,
    stats: Arc<IoStats>,
}

impl StoreInner {
    fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("{tag}-{id}.bin"));
        let file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(&path)?;
        Ok(CountedFile { file, path, stats: Arc::clone(&self.stats), delete_on_drop: true })
    }
}

impl TempStore {
    /// Create a fresh store under the system temp directory.
    pub fn new() -> std::io::Result<TempStore> {
        let dir = std::env::temp_dir().join(format!(
            "extmem-{}-{:x}",
            std::process::id(),
            // Nanosecond timestamp keeps parallel test binaries apart.
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(TempStore {
            inner: Arc::new(StoreInner {
                dir,
                counter: AtomicU64::new(0),
                stats: IoStats::shared(),
            }),
            own_dir: true,
        })
    }

    /// Use an existing directory (not removed on drop).
    pub fn in_dir(dir: &Path) -> std::io::Result<TempStore> {
        std::fs::create_dir_all(dir)?;
        Ok(TempStore {
            inner: Arc::new(StoreInner {
                dir: dir.to_path_buf(),
                counter: AtomicU64::new(0),
                stats: IoStats::shared(),
            }),
            own_dir: false,
        })
    }

    /// The shared I/O counters for this store.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.stats)
    }

    /// Create a new empty counted file.
    pub fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        self.inner.create(tag)
    }

    /// An owned, `'static` handle that can create files in this store
    /// from another thread (same name counter, same I/O counters).
    ///
    /// The handle does not keep the directory alive: creating a file
    /// after the owning `TempStore` dropped fails with `NotFound`, so
    /// workers must be joined before the store goes away (the sorter's
    /// background spill does exactly that).
    pub fn handle(&self) -> StoreHandle {
        StoreHandle { inner: Arc::clone(&self.inner) }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        if self.own_dir {
            let _ = std::fs::remove_dir_all(&self.inner.dir);
        }
    }
}

/// Cloneable, thread-movable file-creation handle for a [`TempStore`].
#[derive(Clone)]
pub struct StoreHandle {
    inner: Arc<StoreInner>,
}

impl StoreHandle {
    /// Create a new empty counted file (see [`TempStore::create`]).
    pub fn create(&self, tag: &str) -> std::io::Result<CountedFile> {
        self.inner.create(tag)
    }

    /// The shared I/O counters of the underlying store.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.stats)
    }
}

/// A real file whose reads and writes are tallied in shared [`IoStats`].
pub struct CountedFile {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    delete_on_drop: bool,
}

impl CountedFile {
    /// Open an existing file at `path` as a counted file (not deleted on
    /// drop). Used to reopen persisted artifacts such as disk indexes.
    pub fn open_path(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Open an existing file read-only (not deleted on drop). Writes
    /// through the handle fail; use this for serving artifacts that may
    /// be deployed on read-only media or with read-only permissions.
    pub fn open_path_readonly(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Create (truncate) a counted file at an explicit path (not deleted
    /// on drop).
    pub fn create_path(path: &Path, stats: Arc<IoStats>) -> std::io::Result<CountedFile> {
        let file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(path)?;
        Ok(CountedFile { file, path: path.to_path_buf(), stats, delete_on_drop: false })
    }

    /// Filesystem path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared counters this file reports to.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Current file length in bytes.
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Keep the file on disk when this handle drops.
    pub fn persist(&mut self) {
        self.delete_on_drop = false;
    }

    /// Seek to an absolute offset.
    pub fn seek_to(&mut self, offset: u64) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        Ok(())
    }

    /// Positioned read (counted); returns bytes read.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
        self.seek_to(offset)?;
        let n = self.file.read(buf)?;
        self.stats.record_read(n as u64);
        Ok(n)
    }

    /// Positioned exact read (counted).
    pub fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.seek_to(offset)?;
        self.file.read_exact(buf)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    /// Reopen a second independent handle onto the same file (own cursor,
    /// same counters). Used when one file is both merge input and random
    /// -access side of a join.
    pub fn reopen(&self) -> std::io::Result<CountedFile> {
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        Ok(CountedFile {
            file,
            path: self.path.clone(),
            stats: Arc::clone(&self.stats),
            delete_on_drop: false,
        })
    }
}

impl Read for CountedFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.file.read(buf)?;
        self.stats.record_read(n as u64);
        Ok(n)
    }
}

impl Write for CountedFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.file.write(buf)?;
        self.stats.record_write(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

impl Drop for CountedFile {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_counts_traffic() {
        let store = TempStore::new().unwrap();
        let mut f = store.create("t").unwrap();
        f.write_all(b"hello world").unwrap();
        f.flush().unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        let stats = store.stats();
        assert_eq!(stats.write_bytes(), 11);
        assert_eq!(stats.read_bytes(), 5);
    }

    #[test]
    fn files_are_deleted_on_drop() {
        let store = TempStore::new().unwrap();
        let path;
        {
            let mut f = store.create("gone").unwrap();
            f.write_all(b"x").unwrap();
            path = f.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn reopen_shares_counters_but_not_cursor() {
        let store = TempStore::new().unwrap();
        let mut f = store.create("dup").unwrap();
        f.write_all(b"abcdef").unwrap();
        f.flush().unwrap();
        let mut g = f.reopen().unwrap();
        let mut buf = [0u8; 3];
        g.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        f.read_exact_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        assert_eq!(store.stats().read_bytes(), 6);
    }

    #[test]
    fn handle_creates_files_from_other_threads() {
        let store = TempStore::new().unwrap();
        let handle = store.handle();
        let worker = std::thread::spawn(move || {
            let mut f = handle.create("worker").unwrap();
            f.write_all(b"spill").unwrap();
            f.flush().unwrap();
            f.persist();
            f.path().to_path_buf()
        });
        let path = worker.join().unwrap();
        assert!(path.exists());
        assert_eq!(store.stats().write_bytes(), 5);
        // Names from handles and the store share one counter: no clashes.
        let f = store.create("worker").unwrap();
        assert_ne!(f.path(), path);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn store_dir_removed_on_drop() {
        let dir;
        {
            let store = TempStore::new().unwrap();
            let mut f = store.create("d").unwrap();
            f.persist();
            f.write_all(b"z").unwrap();
            dir = f.path().parent().unwrap().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
