//! Sequential record streams ("runs") over counted files.

use std::io::{BufReader, BufWriter, Read, Write};

use bytes::BytesMut;

use crate::codec::Record;
use crate::device::CountedFile;

/// A finished sequential file of `len` records.
pub struct Run<R: Record> {
    file: CountedFile,
    len: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> Run<R> {
    /// Number of records in the run.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Open a sequential reader positioned at the first record.
    pub fn reader(self, buffer_records: usize) -> std::io::Result<RunReader<R>> {
        RunReader::new(self.file, self.len, buffer_records)
    }

    /// Open a reader over a second handle, leaving `self` reusable.
    pub fn reader_shared(&self, buffer_records: usize) -> std::io::Result<RunReader<R>> {
        RunReader::new(self.file.reopen()?, self.len, buffer_records)
    }

    /// Read every record into memory (tests and small runs only).
    pub fn read_all(&self) -> std::io::Result<Vec<R>> {
        let mut reader = self.reader_shared(8192)?;
        let mut out = Vec::with_capacity(self.len as usize);
        while let Some(r) = reader.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Buffered writer producing a [`Run`].
pub struct RunWriter<R: Record> {
    out: BufWriter<CountedFile>,
    len: u64,
    buf: BytesMut,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> RunWriter<R> {
    /// Write records into `file`, buffering about `buffer_records`
    /// records between flushes to the counted device.
    pub fn new(file: CountedFile, buffer_records: usize) -> RunWriter<R> {
        let cap = buffer_records.max(1) * R::SIZE;
        RunWriter {
            out: BufWriter::with_capacity(cap, file),
            len: 0,
            buf: BytesMut::with_capacity(R::SIZE),
            _marker: std::marker::PhantomData,
        }
    }

    /// Append one record.
    pub fn push(&mut self, record: R) -> std::io::Result<()> {
        self.buf.clear();
        record.encode(&mut self.buf);
        self.out.write_all(&self.buf)?;
        self.len += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flush and finish, returning the completed [`Run`].
    pub fn finish(self) -> std::io::Result<Run<R>> {
        let mut file = self.out.into_inner().map_err(|e| std::io::Error::other(e.to_string()))?;
        file.flush()?;
        file.seek_to(0)?;
        Ok(Run { file, len: self.len, _marker: std::marker::PhantomData })
    }
}

/// Buffered sequential reader over a [`Run`].
pub struct RunReader<R: Record> {
    input: BufReader<CountedFile>,
    remaining: u64,
    scratch: Vec<u8>,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> RunReader<R> {
    fn new(
        mut file: CountedFile,
        len: u64,
        buffer_records: usize,
    ) -> std::io::Result<RunReader<R>> {
        file.seek_to(0)?;
        let cap = buffer_records.max(1) * R::SIZE;
        Ok(RunReader {
            input: BufReader::with_capacity(cap, file),
            remaining: len,
            scratch: vec![0u8; R::SIZE],
            _marker: std::marker::PhantomData,
        })
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read the next record, or `None` at end of run.
    pub fn next_record(&mut self) -> std::io::Result<Option<R>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.input.read_exact(&mut self.scratch)?;
        self.remaining -= 1;
        let mut slice = &self.scratch[..];
        Ok(Some(R::decode(&mut slice)))
    }

    /// Fill `out` with up to `max` records; returns how many were read.
    pub fn next_batch(&mut self, out: &mut Vec<R>, max: usize) -> std::io::Result<usize> {
        let take = (self.remaining.min(max as u64)) as usize;
        out.reserve(take);
        for _ in 0..take {
            self.input.read_exact(&mut self.scratch)?;
            let mut slice = &self.scratch[..];
            out.push(R::decode(&mut slice));
        }
        self.remaining -= take as u64;
        Ok(take)
    }
}

/// Write all `records` into a fresh run in one call.
pub fn run_from_slice<R: Record>(
    store: &crate::device::TempStore,
    tag: &str,
    records: &[R],
    buffer_records: usize,
) -> std::io::Result<Run<R>> {
    let mut w = RunWriter::new(store.create(tag)?, buffer_records);
    for &r in records {
        w.push(r)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LabelRecord;
    use crate::device::TempStore;

    #[test]
    fn write_read_roundtrip() {
        let store = TempStore::new().unwrap();
        let records: Vec<LabelRecord> =
            (0..1000).map(|i| LabelRecord::new(i, i * 2, i + 7)).collect();
        let run = run_from_slice(&store, "rt", &records, 64).unwrap();
        assert_eq!(run.len(), 1000);
        assert_eq!(run.read_all().unwrap(), records);
    }

    #[test]
    fn batched_reads() {
        let store = TempStore::new().unwrap();
        let records: Vec<LabelRecord> = (0..10).map(|i| LabelRecord::new(i, 0, 0)).collect();
        let run = run_from_slice(&store, "b", &records, 4).unwrap();
        let mut reader = run.reader(4).unwrap();
        let mut batch = Vec::new();
        assert_eq!(reader.next_batch(&mut batch, 6).unwrap(), 6);
        assert_eq!(reader.next_batch(&mut batch, 6).unwrap(), 4);
        assert_eq!(reader.next_batch(&mut batch, 6).unwrap(), 0);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn empty_run() {
        let store = TempStore::new().unwrap();
        let run = run_from_slice::<LabelRecord>(&store, "e", &[], 4).unwrap();
        assert!(run.is_empty());
        let mut r = run.reader(4).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn shared_reader_leaves_run_usable() {
        let store = TempStore::new().unwrap();
        let records: Vec<LabelRecord> = (0..5).map(|i| LabelRecord::new(i, 1, 2)).collect();
        let run = run_from_slice(&store, "s", &records, 4).unwrap();
        assert_eq!(run.read_all().unwrap().len(), 5);
        assert_eq!(run.read_all().unwrap().len(), 5); // twice
    }
}
