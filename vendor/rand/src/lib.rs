#![forbid(unsafe_code)]
//! Minimal, API-compatible stand-in for the subset of the `rand` crate
//! this workspace uses (`Rng::gen_range` / `gen_bool` / `gen`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace self-contained. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, fast, and statistically solid for
//! synthetic-workload generation; it makes no cryptographic claims.

/// A source of random `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`, matching the real `rand` crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from the standard distribution of `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a random word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
