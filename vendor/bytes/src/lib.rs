#![forbid(unsafe_code)]
//! Minimal, API-compatible stand-in for the subset of the `bytes` crate
//! this workspace uses: the [`Buf`] / [`BufMut`] cursor traits over
//! byte slices and growable buffers, and a [`BytesMut`] scratch buffer.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace self-contained.

use std::ops::{Deref, DerefMut};

/// A readable cursor over bytes, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes still available to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance past them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A writable byte sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// A growable, reusable byte buffer, mirroring the subset of
/// `bytes::BytesMut` the workspace needs (scratch space for record
/// encoding).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_vec() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(1);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_mut_clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        b.clear();
        assert!(b.is_empty());
    }
}
