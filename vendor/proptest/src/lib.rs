#![forbid(unsafe_code)]
//! Minimal, API-compatible stand-in for the subset of the `proptest`
//! crate this workspace uses: [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! the [`proptest!`] macro, and `prop_assert*`.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace self-contained. Unlike real proptest it does **no
//! shrinking**: a failing case panics with the standard assertion
//! message, and the deterministic per-test seed makes every failure
//! reproducible as-is.

pub mod test_runner {
    //! Deterministic case generation driving the [`crate::proptest!`] macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of generated cases per property (default 256, like proptest).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies; seeded per test from the test name
    /// (and `PROPTEST_SEED` when set) so failures reproduce exactly.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name, mixed with an optional
            // PROPTEST_SEED environment override.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.rotate_left(17);
                }
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generate `Vec`s of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything property tests normally import.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy) { body }` is
/// expanded to a `#[test]` that checks `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($pat:pat in $strat:expr) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let strategy = $strat;
                let $pat = $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed derives from the test \
                         name; rerun reproduces it deterministically)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_tuples");
        let s = (0u32..10, 5usize..6);
        for _ in 0..100 {
            let (a, b) = s.new_value(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_test("vec_lengths");
        let s = crate::collection::vec(0u32..3, 2..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::for_test("flat_map");
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..2, n..n + 1));
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
        }
    }
}
