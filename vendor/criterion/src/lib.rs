#![forbid(unsafe_code)]
//! Minimal, API-compatible stand-in for the subset of the `criterion`
//! bench harness this workspace uses. The build environment has no
//! access to crates.io, so this shim keeps `cargo bench` working
//! self-contained.
//!
//! It is a *timing harness*, not a statistics package: each benchmark
//! closure is warmed up once and then timed over a fixed sample count,
//! and the mean / best wall-clock per iteration is printed. Sample
//! counts honour [`BenchmarkGroup::sample_size`] and the
//! `CRITERION_SAMPLES` environment variable.

use std::time::{Duration, Instant};

/// Re-export for bench code that spells `criterion::black_box`.
pub use std::hint::black_box;

/// Declared measurement throughput for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (accepted, not tuned).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs: one setup per timed call.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher { samples, total: Duration::ZERO, best: Duration::MAX, iters: 0 }
    }

    /// Time `routine`, called `samples` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.total += dt;
            self.best = self.best.min(dt);
            self.iters += 1;
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.total += dt;
            self.best = self.best.min(dt);
            self.iters += 1;
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(default).max(1)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(group: &str, name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{group}/{name}: no samples");
        return;
    }
    let mean = b.total / b.iters as u32;
    let mut line = format!(
        "{group}/{name}: mean {} best {} ({} samples)",
        fmt_duration(mean),
        fmt_duration(b.best),
        b.iters
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!(" — {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" — {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare group throughput, reported as elements or bytes per second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(env_samples(self.sample_size));
        f(&mut b);
        report(&self.name, &name, &b, self.throughput);
        self
    }

    /// Finish the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(env_samples(10));
        f(&mut b);
        report("bench", &name, &b, None);
        self
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the given groups, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(b.iters, 5);
        assert_eq!(calls, 6); // warm-up + samples
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3);
        let mut setups = 0u64;
        b.iter_batched(|| setups += 1, |()| (), BatchSize::LargeInput);
        assert_eq!(setups, 4); // warm-up + samples
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function("f", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
