//! Directed web-graph workload: asymmetric distances and reachability.
//!
//! Web/wiki link graphs are the directed datasets of Table 6
//! (wikiEng, Baidu, …). This example orients a scale-free topology
//! into a directed graph (with partial reciprocity, like real link
//! graphs), builds the directed index (`Lin`/`Lout` per vertex, ranked
//! by in×out-degree product as in §8), and demonstrates asymmetric
//! queries plus a disk-resident query path.
//!
//! ```text
//! cargo run --release --example web_graph
//! ```

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::{VertexId, INF_DIST};

fn main() {
    let undirected = glp(&GlpParams::with_vertices(15_000, 99));
    let graph = orient_scale_free(&undirected, 0.25, 7);
    println!(
        "web graph: |V| = {}, arcs = {} (25% reciprocal)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let db = build(&graph, &HopDbConfig::default());
    println!(
        "directed index: {} entries over Lin+Lout, {} iterations",
        db.index().total_entries(),
        db.stats().num_iterations()
    );

    // Distances on the web are asymmetric: measure how often
    // d(s,t) != d(t,s) on a sample.
    let n = graph.num_vertices() as u64;
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let (mut asymmetric, mut sampled) = (0usize, 0usize);
    for _ in 0..5_000 {
        let s = (next() % n) as VertexId;
        let t = (next() % n) as VertexId;
        if s == t {
            continue;
        }
        sampled += 1;
        if db.query(s, t) != db.query(t, s) {
            asymmetric += 1;
        }
    }
    println!("asymmetric pairs: {asymmetric}/{sampled} sampled");

    // Serve queries from the disk layout (two label reads per query).
    let store = TempStore::new().expect("temp store");
    let mut disk = DiskIndex::create(db.index(), &store, "web-index").expect("serialize");
    println!("disk index: {} bytes", disk.file_bytes().unwrap());
    let ranking = db.ranking();
    let mut answered = 0usize;
    let queries = 1_000;
    let t0 = std::time::Instant::now();
    for _ in 0..queries {
        let s = ranking.rank_of((next() % n) as VertexId);
        let t = ranking.rank_of((next() % n) as VertexId);
        if disk.query(s, t).expect("disk query") != INF_DIST {
            answered += 1;
        }
    }
    let stats = disk.stats();
    println!(
        "{queries} disk queries in {:?} ({} reachable), {} read ops / {} bytes",
        t0.elapsed(),
        answered,
        stats.read_ops(),
        stats.read_bytes()
    );
}
