//! Weighted graphs and the limits of degree ranking (§7).
//!
//! Three runs side by side:
//! 1. a *weighted scale-free* graph (like Table 6's rating networks) —
//!    degree ranking yields tiny labels;
//! 2. a *road-like weighted grid* under degree ranking — no hubs exist,
//!    so the ranking degrades exactly as §7 warns;
//! 3. the same grid under a sampled-betweenness ranking — §7's proposed
//!    fix ("some heuristical method to approximate this ranking"),
//!    which recovers much of the lost label-size headroom.
//!
//! ```text
//! cargo run --release --example weighted_roads
//! ```

use hop_doubling::graphgen::{glp, grid, with_random_weights, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::sfgraph::centrality::sampled_betweenness_scores;
use hop_doubling::sfgraph::ranking::RankBy;
use hop_doubling::sfgraph::traversal::bidirectional_distance;
use hop_doubling::sfgraph::Graph;

fn report(name: &str, graph: &Graph, cfg: &HopDbConfig) -> f64 {
    let t0 = std::time::Instant::now();
    let db = build(graph, cfg);
    let elapsed = t0.elapsed();
    println!(
        "{name:<22} |V|={:>6} |E|={:>7}  avg|label|={:>7.1}  iters={:>3}  build={elapsed:.2?}",
        graph.num_vertices(),
        graph.num_edges(),
        db.index().avg_label_size(),
        db.stats().num_iterations(),
    );
    // Validate a few random queries.
    let mut x = 88172645463325252u64;
    for _ in 0..50 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let s = (x % graph.num_vertices() as u64) as u32;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let t = (x % graph.num_vertices() as u64) as u32;
        assert_eq!(db.query(s, t), bidirectional_distance(graph, s, t));
    }
    db.index().avg_label_size()
}

fn main() {
    println!("weighted scale-free vs road-like grids (weights 1..=10):\n");
    let default_cfg = HopDbConfig::default();

    let sf = with_random_weights(&glp(&GlpParams::with_vertices(8_000, 5)), 1, 10, 1);
    report("rating network", &sf, &default_cfg);

    let road = with_random_weights(&grid(30, 30), 1, 10, 2);
    let by_degree = report("road grid (degree)", &road, &default_cfg);

    let scores = sampled_betweenness_scores(&road, 256, 9);
    let betweenness_cfg =
        HopDbConfig { rank_by: Some(RankBy::Score(scores)), ..HopDbConfig::default() };
    let by_betweenness = report("road grid (betweenness)", &road, &betweenness_cfg);

    println!(
        "\nThe scale-free graph keeps labels small (hub pivots hit most\n\
         shortest paths — Assumptions 1–3). Grids have no hubs, so degree\n\
         ranking degrades; ranking by sampled betweenness instead cuts the\n\
         average label size by {:.0}% (§7's suggestion, executable).",
        100.0 * (1.0 - by_betweenness / by_degree)
    );
}
