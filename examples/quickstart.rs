//! Quickstart: build a HopDb index for a scale-free graph and answer
//! distance queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::sfgraph::traversal::bidirectional_distance;
use hop_doubling::sfgraph::INF_DIST;

fn main() {
    // A 20k-vertex GLP scale-free graph with the paper's parameters
    // (m = 1.13, m0 = 10, power-law exponent ≈ 2.155).
    let graph = glp(&GlpParams::with_vertices(20_000, 7));
    println!(
        "graph: |V| = {}, |E| = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Build with the paper's default strategy: Hop-Stepping for the
    // first 10 iterations, Hop-Doubling afterwards, pruning always on.
    let t0 = std::time::Instant::now();
    let db = build(&graph, &HopDbConfig::default());
    println!(
        "index: {} entries ({} avg/vertex) built in {:?} over {} iterations",
        db.index().total_entries(),
        db.index().avg_label_size(),
        t0.elapsed(),
        db.stats().num_iterations(),
    );

    // Answer some queries and cross-check against bidirectional BFS.
    let pairs = [(1u32, 17u32), (42, 4_242), (123, 19_999), (5, 5)];
    for (s, t) in pairs {
        let d = db.query(s, t);
        let check = bidirectional_distance(&graph, s, t);
        assert_eq!(d, check, "index disagrees with BFS on ({s}, {t})");
        if d == INF_DIST {
            println!("dist({s}, {t}) = unreachable");
        } else {
            println!("dist({s}, {t}) = {d}");
        }
    }

    // Index statistics of the kind Table 7 reports.
    let coverage = hop_doubling::hoplabels::stats::CoverageStats::from_index(db.index());
    println!(
        "top 1% of vertices cover {:.1}% of all label entries",
        100.0 * coverage.coverage_of_top(graph.num_vertices() / 100)
    );
}
