//! Social-network analytics on top of the distance oracle.
//!
//! The paper's introduction motivates P2P distance querying with
//! network analysis: closeness centrality, degrees of separation, and
//! locating influential users. This example builds a HopDb index over a
//! synthetic social graph and runs those analyses, which issue tens of
//! thousands of point queries — exactly the workload where an index
//! beats per-query BFS.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::sfgraph::{VertexId, INF_DIST};

fn main() {
    // "Social network": heavier density than the default web-like GLP.
    let graph = glp(&GlpParams::with_density(10_000, 8.0, 2024));
    let n = graph.num_vertices();
    println!("social graph: |V| = {n}, |E| = {}", graph.num_edges());

    let db = build(&graph, &HopDbConfig::default());
    println!(
        "index ready: {} entries, {} iterations",
        db.index().total_entries(),
        db.stats().num_iterations()
    );

    // --- Degrees of separation: distance distribution over a sample.
    let mut histogram = [0usize; 16];
    let mut unreachable = 0usize;
    let samples = 20_000;
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..samples {
        let s = (next() % n as u64) as VertexId;
        let t = (next() % n as u64) as VertexId;
        let d = db.query(s, t);
        if d == INF_DIST {
            unreachable += 1;
        } else {
            histogram[(d as usize).min(15)] += 1;
        }
    }
    println!("\ndegrees of separation over {samples} random pairs:");
    for (d, &count) in histogram.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat(1 + count * 50 / samples);
            println!("  {d:>2} hops: {count:>6} {bar}");
        }
    }
    println!("  unreachable: {unreachable}");

    // --- Closeness centrality of candidate influencers (top-degree
    // users) vs random users, via sampled average distance.
    let ranking = db.ranking();
    let sample_targets: Vec<VertexId> = (0..400).map(|_| (next() % n as u64) as VertexId).collect();
    let closeness = |v: VertexId| -> f64 {
        let (mut sum, mut reached) = (0u64, 0u64);
        for &t in &sample_targets {
            let d = db.query(v, t);
            if d != INF_DIST && t != v {
                sum += d as u64;
                reached += 1;
            }
        }
        if reached == 0 {
            0.0
        } else {
            reached as f64 / sum as f64
        }
    };
    println!("\ncloseness centrality (sampled, higher = more central):");
    for r in 0..3 {
        let v = ranking.vertex_at(r);
        println!("  top-degree user {v}: {:.4}", closeness(v));
    }
    for _ in 0..3 {
        let v = (next() % n as u64) as VertexId;
        println!("  random user     {v}: {:.4}", closeness(v));
    }
    println!("\nhub users sit measurably closer to everyone — the small\nhitting set the paper's Assumption 1 builds on.");
}
