//! Disk-based index construction under a small memory budget (§4).
//!
//! The paper's headline systems claim: with 4 GB of RAM it indexes a
//! 9 GB graph, because candidate generation and pruning run as joins
//! over label files. This example scales that down: a deliberately tiny
//! memory budget forces the build through the external sorter and the
//! block nested-loop pruning, and the I/O counters report the traffic
//! in Aggarwal–Vitter block I/Os.
//!
//! ```text
//! cargo run --release --example external_build
//! ```

use hop_doubling::extmem::ExtMemConfig;
use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::external::build_external;
use hop_doubling::hopdb::HopDbConfig;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn main() {
    let raw = glp(&GlpParams::with_vertices(5_000, 31));
    // External builds run on rank-relabeled graphs (id = rank).
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let graph = relabel_by_rank(&raw, &ranking);
    println!("graph: |V| = {}, |E| = {}", graph.num_vertices(), graph.num_edges());

    // A "RAM" of 4096 label records (~48 KB) and 4 KB blocks: the build
    // must spill, sort, and merge on disk, like the paper's 4 GB
    // machine against multi-GB label files.
    let ext = ExtMemConfig { memory_records: 4096, block_bytes: 4096 };
    let cfg = HopDbConfig::default();

    let t0 = std::time::Instant::now();
    let result = build_external(&graph, &cfg, &ext).expect("external build");
    let (read_bytes, write_bytes, read_blocks, write_blocks) = result.io;
    println!(
        "external build: {} entries in {:?}, {} iterations",
        result.index.total_entries(),
        t0.elapsed(),
        result.stats.num_iterations()
    );
    println!(
        "I/O: {:.1} MB read / {:.1} MB written = {} + {} block I/Os (B = {} bytes)",
        read_bytes as f64 / 1e6,
        write_bytes as f64 / 1e6,
        read_blocks,
        write_blocks,
        ext.block_bytes
    );

    println!("\nper-iteration profile (growing/pruning factors of Fig. 10):");
    println!(
        "{:>4} {:>9} {:>10} {:>10} {:>8} {:>7}",
        "iter", "mode", "candidates", "pruned", "prune%", "total"
    );
    for it in &result.stats.iterations {
        println!(
            "{:>4} {:>9} {:>10} {:>10} {:>7.1}% {:>7}",
            it.iteration,
            if it.stepping { "stepping" } else { "doubling" },
            it.candidates,
            it.pruned,
            100.0 * it.pruning_factor(),
            it.total_entries
        );
    }

    // Cross-check a few queries against the in-memory build.
    let (mem_index, _) = hop_doubling::hopdb::build_prelabeled(&graph, &cfg);
    assert_eq!(mem_index, result.index, "external and in-memory builds must agree");
    println!("\nexternal index is bit-identical to the in-memory build ✓");
}
