//! Lemma 2 made executable: the unpruned engine achieves the labeling
//! objectives [O1]/[O2] — for every ordered pair `(u, v)` that admits a
//! *trough shortest path* (a shortest path whose intermediate vertices
//! all rank below `max(r(u), r(v))`), the corresponding label entry
//! exists with the exact distance.
//!
//! Trough distances are computed independently by BFS restricted to the
//! allowed intermediate set, so this checks the engines against the
//! paper's *definition*, not against another engine.

use hop_doubling::hopdb::{build_prelabeled, HopDbConfig, Strategy};
use hop_doubling::hoplabels::index::LabelIndex;
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Direction, Graph, GraphBuilder, VertexId, INF_DIST};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// BFS from `s` to `t` where every intermediate vertex `x` must satisfy
/// `x > limit` (i.e. rank strictly below the higher-ranked endpoint).
fn trough_distance(g: &Graph, s: VertexId, t: VertexId, limit: VertexId) -> u32 {
    if s == t {
        return 0;
    }
    let n = g.num_vertices();
    let mut dist = vec![INF_DIST; n];
    let mut q = VecDeque::new();
    dist[s as usize] = 0;
    q.push_back(s);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v, Direction::Out) {
            if dist[u as usize] != INF_DIST {
                continue;
            }
            if u == t {
                return dist[v as usize] + 1;
            }
            if u > limit {
                dist[u as usize] = dist[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    INF_DIST
}

fn check_objectives(g: &Graph) {
    let ap = all_pairs(g);
    let (index, _) = build_prelabeled(g, &HopDbConfig::unpruned(Strategy::Doubling));
    let LabelIndex::Directed(d) = &index else { panic!("directed expected") };
    let n = g.num_vertices() as VertexId;
    for a in 0..n {
        for b in 0..n {
            if a == b || ap[a as usize][b as usize] == INF_DIST {
                continue;
            }
            // Pair (a ⇝ b); the pivot is the higher-ranked endpoint.
            let limit = a.min(b);
            let td = trough_distance(g, a, b, limit);
            if td != ap[a as usize][b as usize] {
                continue; // no trough *shortest* path — objectives say nothing
            }
            if b < a {
                // r(b) > r(a): [O1] requires (b, dist) ∈ Lout(a).
                assert_eq!(
                    d.out_labels[a as usize].get(b),
                    Some(td),
                    "[O1] violated for ({a} ⇝ {b})"
                );
            } else {
                // r(a) > r(b): [O2] requires (a, dist) ∈ Lin(b).
                assert_eq!(
                    d.in_labels[b as usize].get(a),
                    Some(td),
                    "[O2] violated for ({a} ⇝ {b})"
                );
            }
        }
    }
}

#[test]
fn lemma_2_objectives_hold_on_random_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    for _ in 0..20 {
        let n = rng.gen_range(3..16);
        let mut b = GraphBuilder::new_directed(n);
        for _ in 0..rng.gen_range(n..4 * n) {
            b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
        }
        check_objectives(&b.build());
    }
}

#[test]
fn lemma_2_objectives_hold_on_fig3_graph() {
    check_objectives(&hop_doubling::graphgen::example_graph_fig3());
}
