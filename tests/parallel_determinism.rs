//! Parallel-construction determinism: building the same graph with any
//! worker-thread count must produce an index that is equal entry for
//! entry, serializes to byte-identical files, and answers every query
//! exactly like the BFS/Dijkstra ground truth.

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, with_random_weights, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::traversal::{bfs, dijkstra};
use hop_doubling::sfgraph::{Direction, Graph, VertexId};

/// Serialize an index through the one on-disk code path and return the
/// file's bytes.
fn serialized(index: &hop_doubling::hoplabels::LabelIndex) -> Vec<u8> {
    let store = TempStore::new().unwrap();
    let disk = DiskIndex::create(index, &store, "determinism").unwrap();
    let path = disk.persist();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(path).unwrap();
    bytes
}

fn assert_thread_counts_agree(g: &Graph) {
    let seq = build(g, &HopDbConfig::default().with_parallelism(1));
    let seq_bytes = serialized(seq.index());
    for threads in [2usize, 4, 8] {
        let par = build(g, &HopDbConfig::default().with_parallelism(threads));
        assert_eq!(
            par.index(),
            seq.index(),
            "{threads}-thread index differs from sequential entry-for-entry"
        );
        assert_eq!(
            serialized(par.index()),
            seq_bytes,
            "{threads}-thread serialized index is not byte-identical"
        );
        assert_eq!(par.stats().num_iterations(), seq.stats().num_iterations());
        for (p, s) in par.stats().iterations.iter().zip(&seq.stats().iterations) {
            assert_eq!(
                (p.candidates, p.pruned, p.inserted, p.total_entries),
                (s.candidates, s.pruned, s.inserted, s.total_entries),
                "iteration {} counters diverged at {threads} threads",
                p.iteration
            );
        }
    }
}

#[test]
fn undirected_glp_builds_identically_across_thread_counts() {
    // Large enough that inner iterations actually shard (the engine
    // falls back to one thread below ~1k driving entries).
    let g = glp(&GlpParams::with_density(1_500, 3.0, 42));
    assert_thread_counts_agree(&g);

    // And the parallel build answers exactly like the BFS oracle.
    let db = build(&g, &HopDbConfig::default().with_parallelism(4));
    for s in (0..g.num_vertices() as VertexId).step_by(97) {
        let truth = bfs(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(db.query(s, t), truth[t as usize], "dist({s}, {t})");
        }
    }
}

#[test]
fn directed_glp_builds_identically_across_thread_counts() {
    let g = orient_scale_free(&glp(&GlpParams::with_density(1_200, 2.5, 7)), 0.25, 7);
    assert_thread_counts_agree(&g);

    let db = build(&g, &HopDbConfig::default().with_parallelism(8));
    for s in (0..g.num_vertices() as VertexId).step_by(131) {
        let truth = bfs(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(db.query(s, t), truth[t as usize], "dist({s}, {t})");
        }
    }
}

#[test]
fn weighted_glp_builds_identically_across_thread_counts() {
    // Weights exercise the improve-in-place path of the inverted lists.
    let g = with_random_weights(&glp(&GlpParams::with_density(900, 3.0, 23)), 1, 9, 23);
    assert_thread_counts_agree(&g);

    let db = build(&g, &HopDbConfig::default().with_parallelism(4));
    for s in (0..g.num_vertices() as VertexId).step_by(73) {
        let truth = dijkstra(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(db.query(s, t), truth[t as usize], "dist({s}, {t})");
        }
    }
}
