//! Bit-parallel labels (§6) on HopDb-built indexes, plus the coverage
//! statistics that back Table 7 and Figure 8.

use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hoplabels::bitparallel::BitParallelIndex;
use hop_doubling::hoplabels::stats::CoverageStats;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::bidirectional_distance;
use hop_doubling::sfgraph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

fn ranked(g: &Graph) -> Graph {
    let ranking = rank_vertices(g, &RankBy::Degree);
    relabel_by_rank(g, &ranking)
}

#[test]
fn bit_parallel_exact_on_hopdb_indexes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    for _ in 0..8 {
        let n = rng.gen_range(5..40);
        let mut b = GraphBuilder::new_undirected(n);
        for _ in 0..rng.gen_range(n..4 * n) {
            b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
        }
        let g = ranked(&b.build());
        let (index, _) = build_prelabeled(&g, &HopDbConfig::default());
        for roots in [1, 4, 50] {
            let bp = BitParallelIndex::build(&g, &index, roots);
            for s in 0..n as VertexId {
                for t in 0..n as VertexId {
                    assert_eq!(bp.query(s, t), index.query(s, t), "{s}->{t} roots={roots}");
                }
            }
        }
    }
}

#[test]
fn bit_parallel_shrinks_normal_labels_on_scale_free() {
    let g = ranked(&glp(&GlpParams::with_vertices(800, 13)));
    let (index, _) = build_prelabeled(&g, &HopDbConfig::default());
    let bp = BitParallelIndex::build(&g, &index, 50);
    assert!(
        bp.total_normal_entries() < index.total_entries(),
        "transformation moved no entries: {} vs {}",
        bp.total_normal_entries(),
        index.total_entries()
    );
    // Sampled equality against bidirectional BFS on the same graph.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for _ in 0..800 {
        let s = rng.gen_range(0..g.num_vertices()) as VertexId;
        let t = rng.gen_range(0..g.num_vertices()) as VertexId;
        assert_eq!(bp.query(s, t), bidirectional_distance(&g, s, t));
    }
}

#[test]
fn coverage_stats_show_small_hitting_sets_on_glp() {
    // Table 7's phenomenon: a tiny fraction of top vertices covers 90%
    // of all label entries on scale-free graphs.
    let g = ranked(&glp(&GlpParams::with_vertices(2_000, 77)));
    let (index, _) = build_prelabeled(&g, &HopDbConfig::default());
    let cov = CoverageStats::from_index(&index);
    let pct90 = cov.percent_vertices_for_coverage(0.9);
    assert!(pct90 < 10.0, "90% coverage needed {pct90:.2}% of vertices — not scale-free-like");
    // The curve is monotone and reaches 100%.
    let curve = cov.coverage_curve(1.0, 20);
    assert!(curve.last().unwrap().1 > 99.0);
}

#[test]
fn avg_label_size_stays_small_on_glp() {
    // Fig. 9's flat avg-label curve, in miniature: label size per
    // vertex must stay orders of magnitude below |V|.
    for (n, seed) in [(500usize, 1u64), (1_000, 2), (2_000, 3)] {
        let g = ranked(&glp(&GlpParams::with_vertices(n, seed)));
        let (index, _) = build_prelabeled(&g, &HopDbConfig::default());
        let avg = index.avg_label_size();
        assert!(avg < 60.0, "avg label {avg} too large for |V| = {n}");
    }
}
