//! Corruption corpus for the WAL reader, mirroring
//! `index_corruption.rs`: recovery must *never* panic on arbitrary
//! bytes, every single-byte truncation must come back as the longest
//! valid record prefix, CRC must catch bit flips in record bodies, and
//! a flipped length field must never make the reader over-read or
//! mis-frame the stream.

use hop_doubling::extmem::IoStats;
use hop_doubling::hopdb_server::wal::{
    read_wal, Durability, Wal, WalEdge, RECORD_HEADER_LEN, WAL_HEADER_LEN,
};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hopdb-walcorpus-{}-{name}", std::process::id()))
}

/// The reference batches every test writes: four records of varying
/// sizes, including a single-edge and a larger one.
fn corpus_batches() -> Vec<Vec<WalEdge>> {
    vec![
        vec![(1, 2, 3)],
        vec![(10, 20, 1), (30, 40, 2), (50, 60, 7)],
        (0..17).map(|i| (i, i + 1, 1)).collect(),
        vec![(7, 7, 9), (8, 9, 1)],
    ]
}

/// Write the corpus to a fresh WAL file and return its raw bytes.
fn corpus_bytes(name: &str, epoch: u64) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    let mut wal = Wal::create(&path, epoch, Durability::Off, IoStats::shared()).expect("create");
    for batch in corpus_batches() {
        wal.append(&batch).expect("append");
    }
    wal.sync().expect("sync");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

/// Byte offsets where each record starts, and the total record count.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut bounds = vec![WAL_HEADER_LEN as usize];
    let mut pos = WAL_HEADER_LEN as usize;
    while pos + RECORD_HEADER_LEN as usize <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += RECORD_HEADER_LEN as usize + len;
        bounds.push(pos);
    }
    bounds
}

#[test]
fn every_single_byte_truncation_recovers_the_longest_valid_prefix() {
    let (path, bytes) = corpus_bytes("truncate", 3);
    let bounds = record_boundaries(&bytes);
    let batches = corpus_batches();
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let replay = read_wal(&path, IoStats::shared()).expect("read_wal never errors on garbage");
        if cut < WAL_HEADER_LEN as usize {
            // No complete header: the file reads as absent.
            assert_eq!(replay.epoch, None, "cut={cut}");
            assert!(replay.batches.is_empty(), "cut={cut}");
            assert_eq!(replay.dropped_bytes, cut as u64, "cut={cut}");
        } else {
            // The longest prefix of whole records at or before the cut.
            let want = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.epoch, Some(3), "cut={cut}");
            assert_eq!(replay.batches, batches[..want].to_vec(), "cut={cut}");
            assert_eq!(replay.valid_len, bounds[want] as u64, "cut={cut}");
            assert_eq!(replay.dropped_bytes, (cut - bounds[want]) as u64, "cut={cut}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_bit_flip_is_caught_or_isolated() {
    let (path, bytes) = corpus_bytes("bitflip", 9);
    let batches = corpus_batches();
    // Sweep every byte of the file; every bit of the smaller records'
    // region would be slow × 8, one rotating bit per byte is plenty.
    for at in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[at] ^= 1 << (at % 8);
        std::fs::write(&path, &mutated).unwrap();
        let replay = read_wal(&path, IoStats::shared()).expect("read_wal never errors on garbage");
        if at < 8 {
            // Magic damaged: whole file reads as absent.
            assert_eq!(replay.epoch, None, "at={at}");
        } else if at < WAL_HEADER_LEN as usize {
            // Epoch field: structurally valid, epoch merely differs —
            // recovery rejects it against the manifest.
            assert_ne!(replay.epoch, Some(9), "at={at}");
            assert_eq!(replay.batches, batches, "at={at}");
        } else {
            // A flip in the record region must never fabricate a batch:
            // the replayed prefix is exactly some prefix of what was
            // written (CRC kills the damaged record and the reader
            // stops there).
            assert_eq!(replay.epoch, Some(9), "at={at}");
            assert!(replay.batches.len() < batches.len() || replay.batches == batches, "at={at}");
            assert_eq!(replay.batches, batches[..replay.batches.len()].to_vec(), "at={at}");
            assert!(replay.valid_len + replay.dropped_bytes == bytes.len() as u64, "at={at}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_length_fields_never_over_read() {
    let (path, bytes) = corpus_bytes("length", 1);
    let first_len_off = WAL_HEADER_LEN as usize;
    // Overwrite the first record's length with hostile values: huge,
    // zero, structurally implausible, and "plausible but beyond EOF".
    for hostile in [u32::MAX, 0, 3, 4 + 12 * 1_000_000, bytes.len() as u32 * 2] {
        let mut mutated = bytes.clone();
        mutated[first_len_off..first_len_off + 4].copy_from_slice(&hostile.to_le_bytes());
        std::fs::write(&path, &mutated).unwrap();
        let replay = read_wal(&path, IoStats::shared()).expect("never errors");
        // The damaged record and everything after it are dropped; no
        // allocation or read beyond the file can have happened because
        // the call returned quickly and cleanly.
        assert_eq!(replay.epoch, Some(1), "len={hostile}");
        assert!(replay.batches.is_empty(), "len={hostile}");
        assert_eq!(replay.valid_len, WAL_HEADER_LEN, "len={hostile}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_garbage_files_never_panic() {
    let path = tmp("garbage");
    // Deterministic xorshift noise at several sizes, plus a valid
    // header followed by noise.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for size in [0usize, 1, 7, 16, 17, 64, 4096] {
        let noise: Vec<u8> = (0..size).map(|_| next() as u8).collect();
        std::fs::write(&path, &noise).unwrap();
        let replay = read_wal(&path, IoStats::shared()).expect("garbage is not an I/O error");
        assert!(replay.batches.is_empty(), "size={size}");

        let mut headed = Vec::new();
        headed.extend_from_slice(b"HOPWAL01");
        headed.extend_from_slice(&42u64.to_le_bytes());
        headed.extend_from_slice(&noise);
        std::fs::write(&path, &headed).unwrap();
        let replay = read_wal(&path, IoStats::shared()).expect("garbage is not an I/O error");
        assert_eq!(replay.epoch, Some(42), "size={size}");
        assert!(replay.batches.is_empty(), "size={size}");
        assert_eq!(replay.valid_len, WAL_HEADER_LEN, "size={size}");
    }
    std::fs::remove_file(&path).ok();
}
