//! Corruption corpus for `FlatIndex::from_hopidx_bytes`: systematic
//! single-byte truncations and header bit flips of valid `HOPIDX01`
//! images must come back as clean `Err`s — never a panic — and no
//! mutation of the body may ever produce an index that panics under
//! queries. Extends the checked-header work from the flat read path
//! with an exhaustive sweep (`DiskIndex::open` shares the same header
//! parser).

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::hoplabels::flat::FlatIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::VertexId;

/// Serialized `HOPIDX01` image of a small GLP-built index.
fn serialized_image(directed: bool) -> Vec<u8> {
    let und = glp(&GlpParams::with_density(40, 3.0, if directed { 31 } else { 30 }));
    let g = if directed { orient_scale_free(&und, 0.25, 31) } else { und };
    let rank_by = if directed { RankBy::DegreeProduct } else { RankBy::Degree };
    let relabeled = relabel_by_rank(&g, &rank_vertices(&g, &rank_by));
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = TempStore::new().expect("temp store");
    let path = DiskIndex::create(&index, &store, "corpus").expect("serialize").persist();
    let bytes = std::fs::read(&path).expect("read image");
    std::fs::remove_file(path).ok();
    bytes
}

/// The fixed header: magic (8) + flags (4) + vertex count (8).
const FIXED_HEADER: usize = 20;

#[test]
fn every_truncation_is_a_clean_error() {
    for directed in [false, true] {
        let image = serialized_image(directed);
        assert!(FlatIndex::from_hopidx_bytes(&image).is_ok(), "pristine image must load");
        for cut in 0..image.len() {
            let r = FlatIndex::from_hopidx_bytes(&image[..cut]);
            assert!(r.is_err(), "directed={directed}: truncation to {cut} bytes parsed");
        }
    }
}

#[test]
fn trailing_garbage_is_a_clean_error() {
    for directed in [false, true] {
        let mut image = serialized_image(directed);
        for extra in [1usize, 7, 4096] {
            image.extend(std::iter::repeat_n(0xA5u8, extra));
            assert!(
                FlatIndex::from_hopidx_bytes(&image).is_err(),
                "directed={directed}: {extra} trailing bytes accepted"
            );
            image.truncate(image.len() - extra);
        }
    }
}

#[test]
fn every_fixed_header_bit_flip_is_a_clean_error() {
    // Magic, flags word (directed + reserved), and the vertex count:
    // every single-bit flip must be rejected. The magic and reserved
    // flags are checked directly; vertex-count flips are caught by the
    // monotone-offsets and exact-length checks.
    for directed in [false, true] {
        let image = serialized_image(directed);
        for byte in 0..FIXED_HEADER {
            for bit in 0..8 {
                let mut mutated = image.clone();
                mutated[byte] ^= 1 << bit;
                let r = FlatIndex::from_hopidx_bytes(&mutated);
                assert!(
                    r.is_err(),
                    "directed={directed}: flip of bit {bit} in header byte {byte} parsed"
                );
            }
        }
    }
}

#[test]
fn body_bit_flips_never_panic_and_surviving_indexes_answer_safely() {
    // Beyond the fixed header (offset directories, entry regions) a
    // flip may legitimately still parse — the format carries no
    // checksum — but it must never panic, and any index that does
    // parse must answer every in-range query without panicking.
    for directed in [false, true] {
        let image = serialized_image(directed);
        // Every byte, one flipped bit each (rotating which bit, to keep
        // the corpus linear in the image size while touching high and
        // low bits across the file).
        for byte in FIXED_HEADER..image.len() {
            let mut mutated = image.clone();
            mutated[byte] ^= 1 << (byte % 8);
            if let Ok(index) = FlatIndex::from_hopidx_bytes(&mutated) {
                let n = index.num_vertices() as VertexId;
                for s in (0..n).step_by(7) {
                    for t in (0..n).step_by(5) {
                        let _ = index.query(s, t);
                    }
                }
            }
        }
    }
}

#[test]
fn disk_open_rejects_the_same_fixed_header_corpus() {
    // DiskIndex::open goes through the same HopIdxHeader::parse; the
    // sweep keeps both loaders honest about the shared checks.
    let store = TempStore::new().expect("temp store");
    for directed in [false, true] {
        let image = serialized_image(directed);
        for byte in 0..FIXED_HEADER {
            let mut mutated = image.clone();
            mutated[byte] ^= 1 << (byte % 8);
            let mut f = store.create("mut").expect("create");
            std::io::Write::write_all(&mut f, &mutated).expect("write");
            std::io::Write::flush(&mut f).expect("flush");
            assert!(
                DiskIndex::open(f).is_err(),
                "directed={directed}: header byte {byte} flip opened"
            );
        }
    }
}
