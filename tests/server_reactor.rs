//! Edge-case tests for the epoll serving backend: byte-identical
//! equivalence with the threaded backend, partial frames split at
//! arbitrary byte boundaries, pipelined out-of-order correlation,
//! write backpressure against never-reading clients, idle eviction,
//! hot swap under pipelined load, and the HTTP/JSON front.
#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hopdb_server::client::Session;
use hop_doubling::hopdb_server::proto::{Request, RequestBody, HEADER_LEN, UNREACHABLE};
use hop_doubling::hopdb_server::{serve, Backend, Client, ServerConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::hoplabels::flat::FlatIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::{Graph, VertexId};

/// Build an index for `g` and serialize it to a standalone temp file;
/// returns the file and the frozen flat index.
fn build_index_file(g: &Graph, tag: &str) -> (PathBuf, FlatIndex) {
    let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(g, &rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let path = std::env::temp_dir().join(format!("hopdb-rx-{}-{tag}.idx", std::process::id()));
    std::fs::copy(&staged, &path).expect("stage index");
    std::fs::remove_file(staged).ok();
    (path, FlatIndex::from_index(&index))
}

fn query_frame(id: u64, pairs: &[(VertexId, VertexId)]) -> Vec<u8> {
    Request { id, body: RequestBody::Query(pairs.to_vec()) }.encode()
}

/// Read exactly `count` complete `HOPR` frames off `stream`, each
/// returned as its raw bytes (header + payload).
fn read_frames(stream: &mut TcpStream, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let mut frame = vec![0u8; HEADER_LEN];
            stream.read_exact(&mut frame).expect("frame header");
            let len = u32::from_le_bytes(frame[14..18].try_into().unwrap()) as usize;
            frame.resize(HEADER_LEN + len, 0);
            stream.read_exact(&mut frame[HEADER_LEN..]).expect("frame payload");
            frame
        })
        .collect()
}

fn frame_id(frame: &[u8]) -> u64 {
    u64::from_le_bytes(frame[6..14].try_into().unwrap())
}

/// Distances payload of a `HOPR` frame: count, then the values.
fn frame_dists(frame: &[u8]) -> Vec<u32> {
    let count = u32::from_le_bytes(frame[18..22].try_into().unwrap()) as usize;
    let dists: Vec<u32> =
        frame[22..].chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(dists.len(), count, "distance count matches payload");
    dists
}

#[test]
fn epoll_and_threads_serve_byte_identical_responses() {
    for directed in [false, true] {
        let und = glp(&GlpParams::with_density(70, 3.0, if directed { 41 } else { 40 }));
        let g = if directed { orient_scale_free(&und, 0.25, 41) } else { und };
        let tag = if directed { "eq-d" } else { "eq-u" };
        let (path, _) = build_index_file(&g, tag);
        let n = 70u32;

        // One pipelined request script: batches, single pairs, an
        // out-of-range error, and a recoverable zero-pair error, all
        // written before any response is read.
        let mut script = Vec::new();
        let mut frames = 0usize;
        for id in 1..=6u64 {
            let k = id as u32;
            let pairs: Vec<(u32, u32)> =
                (0..17u32).map(|i| ((i * k) % n, (i * 7 + k) % n)).collect();
            script.extend_from_slice(&query_frame(id, &pairs));
            frames += 1;
        }
        script.extend_from_slice(&query_frame(7, &[(0, n)])); // out of range
        script.extend_from_slice(&query_frame(8, &[])); // zero pairs
        script.extend_from_slice(&query_frame(9, &[(1, 2)]));
        frames += 3;

        let mut transcripts = Vec::new();
        for backend in [Backend::Threads, Backend::Epoll] {
            let config = ServerConfig { backend, threads: 2, ..ServerConfig::default() };
            let handle = serve("127.0.0.1:0", &path, config).expect("serve");
            let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
            raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            raw.write_all(&script).expect("write script");
            // Pipelined responses may legally arrive out of order on
            // the epoll backend (parse-level errors are answered
            // inline); equivalence is per request id.
            let mut replies = read_frames(&mut raw, frames);
            replies.sort_by_key(|f| frame_id(f));
            transcripts.push(replies);
            drop(raw);
            handle.shutdown();
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "threads and epoll must serve byte-identical responses ({tag})"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn partial_frames_at_arbitrary_byte_boundaries() {
    let g = glp(&GlpParams::with_density(60, 3.0, 5));
    let (path, flat) = build_index_file(&g, "drip");
    let handle = serve("127.0.0.1:0", &path, ServerConfig::default()).expect("serve");
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    raw.set_nodelay(true).unwrap();

    // One frame dripped a byte at a time — the decoder must hold the
    // partial prefix across an arbitrary number of reads.
    let frame = query_frame(3, &[(1, 4), (0, 2)]);
    for &b in &frame {
        raw.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_micros(300));
    }
    let reply = read_frames(&mut raw, 1);
    assert_eq!(frame_dists(&reply[0]), vec![flat.query(1, 4), flat.query(0, 2)]);

    // Two frames whose concatenation is split inside the *second*
    // header: the leftover after frame one must be kept and completed.
    let mut two = query_frame(10, &[(2, 3)]);
    two.extend_from_slice(&query_frame(11, &[(3, 2)]));
    let cut = query_frame(10, &[(2, 3)]).len() + 7; // mid second header
    raw.write_all(&two[..cut]).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    raw.write_all(&two[cut..]).unwrap();
    let reply = read_frames(&mut raw, 2);
    assert_eq!(frame_id(&reply[0]), 10);
    assert_eq!(frame_id(&reply[1]), 11, "second dripped frame answered with its own id");
    assert_eq!(frame_dists(&reply[0]), vec![flat.query(2, 3)]);
    assert_eq!(frame_dists(&reply[1]), vec![flat.query(3, 2)]);

    drop(raw);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn pipelined_session_correlates_out_of_order_waits() {
    let g = glp(&GlpParams::with_density(80, 3.0, 6));
    let (path, flat) = build_index_file(&g, "pipeline");
    let handle = serve("127.0.0.1:0", &path, ServerConfig::default()).expect("serve");

    let mut session = Session::connect(handle.local_addr()).expect("connect");
    session.set_io_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for k in 0..10u32 {
        let pairs: Vec<(u32, u32)> = (0..=k).map(|i| ((i * 3 + k) % 80, (i * 11) % 80)).collect();
        expected.push(flat.query_many(&pairs, 1));
        tickets.push(session.submit(&pairs).expect("submit"));
    }
    assert_eq!(session.in_flight(), 10);
    // Redeem strictly in reverse: every answer must land on the ticket
    // that asked for it, regardless of arrival order.
    for (ticket, want) in tickets.into_iter().zip(expected).rev() {
        assert_eq!(session.wait(ticket).expect("wait"), want, "ticket {}", ticket.id());
    }
    assert_eq!(session.in_flight(), 0);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn inflight_cap_pauses_reads_but_answers_everything() {
    let g = glp(&GlpParams::with_density(60, 3.0, 7));
    let (path, flat) = build_index_file(&g, "cap");
    let config = ServerConfig { max_inflight: 2, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path, config).expect("serve");

    // 16 pipelined frames against a cap of 2: the reactor must pause
    // reading at the cap and resume as completions drain, answering
    // every frame exactly once and in submission order.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut script = Vec::new();
    for id in 1..=16u64 {
        script.extend_from_slice(&query_frame(id, &[(id as u32 % 60, 3)]));
    }
    raw.write_all(&script).unwrap();
    let reply = read_frames(&mut raw, 16);
    for (i, frame) in reply.iter().enumerate() {
        let id = frame_id(frame);
        assert_eq!(id, i as u64 + 1, "responses echo ids in submission order");
        assert_eq!(frame_dists(frame), vec![flat.query(id as u32 % 60, 3)]);
    }

    drop(raw);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn never_reading_client_backpressures_without_stalling_the_reactor() {
    let g = glp(&GlpParams::with_density(60, 3.0, 8));
    let (path, flat) = build_index_file(&g, "bp");
    let handle = serve("127.0.0.1:0", &path, ServerConfig::default()).expect("serve");
    let addr = handle.local_addr();

    // Each response is ~195 KiB; eight of them (~1.6 MiB) exceed the
    // server's 1 MiB write high-water mark, so with the client not
    // reading, the server must park the connection instead of buffering
    // without bound — and keep serving *other* connections meanwhile.
    let pairs: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i % 60, (i * 13 + 1) % 60)).collect();
    let expect = flat.query_many(&pairs, 1);
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let script: Vec<u8> = (1..=8u64).flat_map(|id| query_frame(id, &pairs)).collect();
    let writer = std::thread::spawn({
        let mut half = stalled.try_clone().expect("clone");
        move || half.write_all(&script).expect("write big script")
    });

    // While the stalled connection is parked, the reactor must still
    // answer a fresh connection promptly.
    std::thread::sleep(Duration::from_millis(300));
    let mut admin = Client::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(admin.stats().expect("stats while peer is stalled").generation, 1);
    assert_eq!(admin.query_one(1, 1).expect("query while peer is stalled"), 0);

    // Start reading: the parked connection must drain completely, every
    // answer intact and in order.
    let reply = read_frames(&mut stalled, 8);
    writer.join().expect("writer thread");
    for (i, frame) in reply.iter().enumerate() {
        assert_eq!(frame.len(), HEADER_LEN + 4 + 4 * pairs.len());
        assert_eq!(frame_id(frame), i as u64 + 1);
        assert_eq!(frame_dists(frame), expect, "stalled frame {} diverges", i + 1);
    }

    drop(stalled);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn idle_timeout_evicts_quiet_connections_only() {
    let g = glp(&GlpParams::with_density(60, 3.0, 9));
    let (path, _) = build_index_file(&g, "idle");
    let config = ServerConfig { idle_timeout_ms: 150, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path, config).expect("serve");
    let addr = handle.local_addr();

    let mut quiet = Client::connect(addr).expect("connect");
    quiet.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(quiet.query_one(1, 1).expect("warm-up query"), 0);

    let mut busy = Client::connect(addr).expect("connect");
    busy.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
    for _ in 0..12 {
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(busy.query_one(2, 2).expect("busy client must survive"), 0);
    }

    // The quiet connection sat idle well past the timeout: its next
    // query must fail (EOF or reset), never hang.
    let err = quiet.query_one(1, 1);
    assert!(err.is_err(), "idle connection should have been evicted");

    drop(busy);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn hot_swap_during_pipelined_batches_never_mixes_generations() {
    let ga = glp(&GlpParams::with_density(120, 3.0, 1001));
    let gb = glp(&GlpParams::with_density(120, 5.0, 2002));
    let (path_a, flat_a) = build_index_file(&ga, "rxswap-a");
    let (path_b, flat_b) = build_index_file(&gb, "rxswap-b");

    let pairs: Vec<(u32, u32)> = (0..120u32).map(|i| (i, (i * 37 + 11) % 120)).collect();
    let expect_a = flat_a.query_many(&pairs, 1);
    let expect_b = flat_b.query_many(&pairs, 1);
    assert_ne!(expect_a, expect_b, "test graphs must disagree");

    let config = ServerConfig { swap_path: Some(path_b.clone()), ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path_a, config).expect("serve");
    let addr = handle.local_addr();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let mut session = Session::connect(addr).expect("connect");
            session.set_io_timeout(Some(Duration::from_secs(20))).unwrap();
            let (mut saw_a, mut saw_b) = (0u32, 0u32);
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                // Keep a pipeline of 6 batches in flight across the
                // swap; every response must match exactly one index.
                let tickets: Vec<_> =
                    (0..6).map(|_| session.submit(&pairs).expect("submit")).collect();
                for t in tickets {
                    let got = session.wait(t).expect("wait");
                    if got == expect_a {
                        saw_a += 1;
                    } else if got == expect_b {
                        saw_b += 1;
                    } else {
                        panic!("pipelined response matches neither generation");
                    }
                }
            }
            (saw_a, saw_b)
        });

        std::thread::sleep(Duration::from_millis(150));
        let mut admin = Client::connect(addr).expect("admin connect");
        let (generation, vertices) = admin.swap().expect("swap");
        assert_eq!((generation, vertices), (2, 120));
        assert_eq!(admin.query(&pairs).expect("post-swap query"), expect_b);
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, std::sync::atomic::Ordering::SeqCst);

        let (saw_a, saw_b) = worker.join().expect("worker");
        assert!(saw_a > 0, "never observed the pre-swap index");
        assert!(saw_b > 0, "never observed the post-swap index");
    });

    handle.shutdown();
    for p in [path_a, path_b] {
        std::fs::remove_file(p).ok();
    }
}

/// Send one HTTP request, read status line + headers + body.
fn http_roundtrip(stream: &mut TcpStream, request: &str) -> (u16, String) {
    stream.write_all(request.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "EOF before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("UTF-8 head");
    let code: u16 = head.split_whitespace().nth(1).expect("status code").parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .map(|v| v.trim().parse().unwrap())
        .unwrap_or(0);
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF before response body completed");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end..head_end + content_length].to_vec()).unwrap();
    (code, body)
}

#[test]
fn http_front_serves_json_on_the_same_port() {
    let g = glp(&GlpParams::with_density(60, 3.0, 10));
    let (path, flat) = build_index_file(&g, "http");
    let handle = serve("127.0.0.1:0", &path, ServerConfig::default()).expect("serve");
    let addr = handle.local_addr();

    let mut http = TcpStream::connect(addr).expect("connect");
    http.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    // GET /query, keep-alive: two requests on one connection.
    let d01 = flat.query(0, 1);
    let (code, body) = http_roundtrip(&mut http, "GET /query?s=0&t=1 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(code, 200);
    assert_eq!(body, format!("{{\"s\":0,\"t\":1,\"dist\":{d01}}}"));
    let (code, body) = http_roundtrip(&mut http, "GET /query?s=2&t=2 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!((code, body.as_str()), (200, "{\"s\":2,\"t\":2,\"dist\":0}"));

    // POST /query_many with both accepted JSON shapes.
    let want: Vec<String> = [(0u32, 1u32), (1, 2), (2, 0)]
        .iter()
        .map(|&(s, t)| {
            let d = flat.query(s, t);
            if d == UNREACHABLE {
                "null".into()
            } else {
                d.to_string()
            }
        })
        .collect();
    let expected = format!("{{\"dists\":[{}]}}", want.join(","));
    for payload in ["[[0,1],[1,2],[2,0]]", "{\"pairs\":[[0,1],[1,2],[2,0]]}"] {
        let request = format!(
            "POST /query_many HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        );
        let (code, body) = http_roundtrip(&mut http, &request);
        assert_eq!((code, body.as_str()), (200, expected.as_str()), "payload {payload}");
    }

    // GET /stats returns the serving counters as JSON.
    let (code, body) = http_roundtrip(&mut http, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(code, 200);
    assert!(body.contains("\"generation\":1"), "{body}");
    assert!(body.contains("\"vertices\":60"), "{body}");

    // While HTTP requests flow, a binary HOPQ client shares the port.
    let mut hopq = Client::connect(addr).expect("connect");
    assert_eq!(hopq.query_one(0, 1).expect("binary query"), d01);

    // Unknown endpoint: 404, and the error response closes the stream.
    let (code, _) = http_roundtrip(&mut http, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(code, 404);
    let mut tail = Vec::new();
    http.read_to_end(&mut tail).expect("read to EOF after error");
    assert!(tail.is_empty(), "no bytes after an error response");

    // Out-of-range vertices surface as a JSON-visible 400.
    let mut http = TcpStream::connect(addr).expect("connect");
    http.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let (code, body) = http_roundtrip(&mut http, "GET /query?s=0&t=60 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(code, 400);
    assert!(body.contains("out of range"), "{body}");

    drop(hopq);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
