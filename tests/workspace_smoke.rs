//! Workspace wiring smoke test: every facade re-export is reachable
//! under its `hop_doubling::` path, and a small GLP graph round-trips
//! build → query against the BFS ground truth.

use hop_doubling::baselines::{Bidij, DistanceOracle};
use hop_doubling::extmem::{ExtMemConfig, LabelRecord};
use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::hoplabels::LabelEntry;
use hop_doubling::sfgraph::traversal::bfs;
use hop_doubling::sfgraph::{Direction, Graph, VertexId};

/// Every workspace member is reachable through the facade: construct a
/// value from each re-exported crate.
#[test]
fn facade_reexports_all_members() {
    // sfgraph
    let g: Graph = glp(&GlpParams::with_vertices(50, 7));
    assert_eq!(g.num_vertices(), 50);
    // extmem
    let record = LabelRecord::new(1, 2, 3);
    assert_eq!(record.inverted(), LabelRecord::new(2, 1, 3));
    let _ = ExtMemConfig::default();
    // hoplabels
    assert_eq!(LabelEntry::new(4, 9).pivot, 4);
    // hopdb
    let db = build(&g, &HopDbConfig::default());
    assert_eq!(db.query(0, 0), 0);
    // baselines
    let bidij = Bidij::new(g.clone());
    assert_eq!(bidij.distance(0, 0), 0);
}

/// A 100-vertex GLP graph: the index answers every source's
/// single-source distances exactly as BFS does.
#[test]
fn glp_100_roundtrips_against_bfs_oracle() {
    let g = glp(&GlpParams::with_vertices(100, 42));
    let db = build(&g, &HopDbConfig::default());
    for s in 0..g.num_vertices() as VertexId {
        let truth = bfs(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(db.query(s, t), truth[t as usize], "dist({s}, {t}) mismatch");
        }
    }
}
