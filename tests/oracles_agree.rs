//! Cross-crate correctness: every oracle must return the exact distance
//! on every pair of many randomized graphs (directed/undirected,
//! weighted/unweighted) — the executable form of Theorems 1, 3, 5.

use hop_doubling::baselines::{Bidij, DistanceOracle, HighwayCover, IsLabel, Pll};
use hop_doubling::hopdb::{build, HopDbConfig, Strategy};
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

fn random_graph(rng: &mut rand::rngs::StdRng, directed: bool, weighted: bool) -> Graph {
    let n = rng.gen_range(3..35);
    let mut b =
        if directed { GraphBuilder::new_directed(n) } else { GraphBuilder::new_undirected(n) };
    if weighted {
        b = b.weighted();
    }
    for _ in 0..rng.gen_range(n..4 * n) {
        b.add_weighted_edge(
            rng.gen_range(0..n) as VertexId,
            rng.gen_range(0..n) as VertexId,
            if weighted { rng.gen_range(1..9) } else { 1 },
        );
    }
    b.build()
}

fn check_all(g: &Graph, case: usize) {
    let truth = all_pairs(g);
    let n = g.num_vertices() as VertexId;

    let hopdb_default = build(g, &HopDbConfig::default());
    let hopdb_step = build(g, &HopDbConfig::with_strategy(Strategy::Stepping));
    let hopdb_dbl = build(g, &HopDbConfig::with_strategy(Strategy::Doubling));
    let pll = Pll::build(g);
    let isl = IsLabel::build(g, usize::MAX).expect("no budget");
    let hc = HighwayCover::build(g.clone(), 4);
    let bidij = Bidij::new(g.clone());

    for s in 0..n {
        for t in 0..n {
            let want = truth[s as usize][t as usize];
            assert_eq!(hopdb_default.query(s, t), want, "hopdb hybrid {s}->{t} case {case}");
            assert_eq!(hopdb_step.query(s, t), want, "hopdb stepping {s}->{t} case {case}");
            assert_eq!(hopdb_dbl.query(s, t), want, "hopdb doubling {s}->{t} case {case}");
            assert_eq!(pll.distance(s, t), want, "pll {s}->{t} case {case}");
            assert_eq!(isl.distance(s, t), want, "islabel {s}->{t} case {case}");
            assert_eq!(hc.distance(s, t), want, "highway {s}->{t} case {case}");
            assert_eq!(bidij.distance(s, t), want, "bidij {s}->{t} case {case}");
        }
    }
}

#[test]
fn all_oracles_exact_undirected_unweighted() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
    for case in 0..12 {
        let g = random_graph(&mut rng, false, false);
        check_all(&g, case);
    }
}

#[test]
fn all_oracles_exact_directed_unweighted() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
    for case in 0..12 {
        let g = random_graph(&mut rng, true, false);
        check_all(&g, case);
    }
}

#[test]
fn all_oracles_exact_undirected_weighted() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1003);
    for case in 0..12 {
        let g = random_graph(&mut rng, false, true);
        check_all(&g, case);
    }
}

#[test]
fn all_oracles_exact_directed_weighted() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1004);
    for case in 0..12 {
        let g = random_graph(&mut rng, true, true);
        check_all(&g, case);
    }
}

#[test]
fn oracles_exact_on_glp_scale_free() {
    // A realistic (small) scale-free workload, sampled pairs.
    let g = hop_doubling::graphgen::glp(&hop_doubling::graphgen::GlpParams::with_vertices(600, 5));
    let db = build(&g, &HopDbConfig::default());
    let pll = Pll::build(&g);
    let bidij = Bidij::new(g.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for _ in 0..2_000 {
        let s = rng.gen_range(0..g.num_vertices()) as VertexId;
        let t = rng.gen_range(0..g.num_vertices()) as VertexId;
        let want = bidij.distance(s, t);
        assert_eq!(db.query(s, t), want);
        assert_eq!(pll.distance(s, t), want);
    }
}

#[test]
fn oracles_exact_on_paper_examples() {
    for g in [
        hop_doubling::graphgen::road_graph_gr(),
        hop_doubling::graphgen::star_graph_gs(),
        hop_doubling::graphgen::example_graph_fig3(),
    ] {
        check_all(&g, usize::MAX);
    }
}
