//! Property-based invariants over randomly generated graphs.
//!
//! * HopDb queries equal BFS/Dijkstra ground truth (exactness);
//! * undirected distances are symmetric;
//! * the triangle inequality holds on index answers;
//! * label pivots always outrank their owners (the trough/rank
//!   invariant every engine relies on);
//! * pruning never loses exactness and never enlarges the index.

use hop_doubling::hopdb::{build, build_prelabeled, HopDbConfig, Strategy as HopStrategy};
use hop_doubling::hoplabels::index::LabelIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Graph, GraphBuilder, VertexId, INF_DIST};
use proptest::prelude::*;

/// Strategy: a random graph given by a vertex count and edge endpoints.
fn graph_strategy(directed: bool, weighted: bool) -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..6);
        proptest::collection::vec(edge, 1..(3 * n)).prop_map(move |edges| {
            let mut b = if directed {
                GraphBuilder::new_directed(n)
            } else {
                GraphBuilder::new_undirected(n)
            };
            if weighted {
                b = b.weighted();
            }
            for (u, v, w) in edges {
                b.add_weighted_edge(u, v, if weighted { w } else { 1 });
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hopdb_matches_ground_truth_undirected(g in graph_strategy(false, false)) {
        let truth = all_pairs(&g);
        let db = build(&g, &HopDbConfig::default());
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(db.query(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn hopdb_matches_ground_truth_directed_weighted(g in graph_strategy(true, true)) {
        let truth = all_pairs(&g);
        let db = build(&g, &HopDbConfig::default());
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(db.query(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn undirected_queries_are_symmetric(g in graph_strategy(false, true)) {
        let db = build(&g, &HopDbConfig::default());
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(db.query(s, t), db.query(t, s));
            }
        }
    }

    #[test]
    fn triangle_inequality_on_answers(g in graph_strategy(true, false)) {
        let db = build(&g, &HopDbConfig::default());
        let n = g.num_vertices() as VertexId;
        for s in 0..n {
            for m in 0..n {
                for t in 0..n {
                    let (a, b, c) = (db.query(s, m), db.query(m, t), db.query(s, t));
                    if a != INF_DIST && b != INF_DIST {
                        prop_assert!(c <= a + b, "d({s},{t})={c} > {a}+{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn pivots_always_outrank_owners(g in graph_strategy(true, false)) {
        let ranking = rank_vertices(&g, &RankBy::DegreeProduct);
        let h = relabel_by_rank(&g, &ranking);
        let (index, _) = build_prelabeled(&h, &HopDbConfig::default());
        let LabelIndex::Directed(d) = &index else { panic!("directed expected") };
        for (v, l) in d.out_labels.iter().enumerate() {
            for e in l.entries() {
                prop_assert!(e.pivot as usize <= v, "Lout({v}) pivot {} under-ranked", e.pivot);
            }
        }
        for (v, l) in d.in_labels.iter().enumerate() {
            for e in l.entries() {
                prop_assert!(e.pivot as usize <= v, "Lin({v}) pivot {} under-ranked", e.pivot);
            }
        }
    }

    #[test]
    fn pruning_shrinks_or_keeps_index(g in graph_strategy(false, false)) {
        let pruned = build(&g, &HopDbConfig::with_strategy(HopStrategy::Stepping));
        let unpruned = build(&g, &HopDbConfig::unpruned(HopStrategy::Stepping));
        prop_assert!(pruned.index().total_entries() <= unpruned.index().total_entries());
        // Both stay exact.
        let truth = all_pairs(&g);
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(pruned.query(s, t), truth[s as usize][t as usize]);
                prop_assert_eq!(unpruned.query(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn self_distance_is_zero_everything_else_positive(g in graph_strategy(true, true)) {
        let db = build(&g, &HopDbConfig::default());
        for v in 0..g.num_vertices() as VertexId {
            prop_assert_eq!(db.query(v, v), 0);
        }
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                if s != t {
                    prop_assert!(db.query(s, t) > 0);
                }
            }
        }
    }
}
