//! Cross-validation between independent implementations: HopDb with
//! exhaustive post-pruning (§5.2) and PLL both produce the *canonical*
//! 2-hop cover for a given rank order (§2.1), so their label sets must
//! coincide entry for entry — two algorithmically unrelated code paths
//! arriving at the same canonical object is strong evidence both are
//! right.

use hop_doubling::baselines::pll;
use hop_doubling::hopdb::{build_prelabeled, postprune, HopDbConfig};
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

fn ranked_random(rng: &mut rand::rngs::StdRng, directed: bool, weighted: bool) -> Graph {
    let n = rng.gen_range(3..28);
    let mut b =
        if directed { GraphBuilder::new_directed(n) } else { GraphBuilder::new_undirected(n) };
    if weighted {
        b = b.weighted();
    }
    for _ in 0..rng.gen_range(n..4 * n) {
        b.add_weighted_edge(
            rng.gen_range(0..n) as VertexId,
            rng.gen_range(0..n) as VertexId,
            if weighted { rng.gen_range(1..7) } else { 1 },
        );
    }
    let g = b.build();
    let ranking = rank_vertices(&g, &RankBy::Degree);
    relabel_by_rank(&g, &ranking)
}

fn check(g: &Graph, case: usize) {
    let (mut hop, _) = build_prelabeled(g, &HopDbConfig::default());
    postprune::post_prune(&mut hop);
    let pll_index = pll::build_prelabeled(g);
    assert_eq!(
        hop, pll_index,
        "post-pruned HopDb and PLL disagree on the canonical cover (case {case})"
    );
}

#[test]
fn canonical_cover_matches_pll_undirected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(501);
    for case in 0..20 {
        let g = ranked_random(&mut rng, false, false);
        check(&g, case);
    }
}

#[test]
fn canonical_cover_matches_pll_directed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(502);
    for case in 0..20 {
        let g = ranked_random(&mut rng, true, false);
        check(&g, case);
    }
}

#[test]
fn canonical_cover_matches_pll_on_paper_examples() {
    check(&hop_doubling::graphgen::road_graph_gr(), 9001);
    check(&hop_doubling::graphgen::star_graph_gs(), 9002);
    check(&hop_doubling::graphgen::example_graph_fig3(), 9003);
}

#[test]
fn canonical_cover_matches_pll_on_glp() {
    let raw =
        hop_doubling::graphgen::glp(&hop_doubling::graphgen::GlpParams::with_vertices(400, 33));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    check(&g, 9004);
}

#[test]
fn canonical_cover_matches_pll_weighted() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(503);
    for case in 0..20 {
        let directed = rng.gen_bool(0.5);
        let g = ranked_random(&mut rng, directed, true);
        check(&g, case + 100);
    }
}
