//! End-to-end tests for the `hopdb-server` daemon: boot it on an
//! ephemeral port against GLP-built indexes, issue single and batched
//! queries from multiple concurrent client threads, and require
//! bit-identical agreement with in-process `FlatIndex::query` and BFS
//! ground truth — directed and undirected, and across a live hot swap.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hopdb_server::{serve, Client, ServerConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::hoplabels::flat::FlatIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Dist, Graph, VertexId};

/// Build an index for `g` (rank space, no sidecar) and serialize it to
/// a standalone temp file; returns the file and the frozen flat index.
fn build_index_file(g: &Graph, tag: &str) -> (PathBuf, FlatIndex, Graph) {
    let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(g, &rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let path = std::env::temp_dir().join(format!("hopdb-e2e-{}-{tag}.idx", std::process::id()));
    std::fs::copy(&staged, &path).expect("stage index");
    std::fs::remove_file(staged).ok();
    (path, FlatIndex::from_index(&index), relabeled)
}

#[test]
fn served_answers_match_flat_and_bfs_truth() {
    for directed in [false, true] {
        let und = glp(&GlpParams::with_density(120, 3.0, if directed { 77 } else { 76 }));
        let g = if directed { orient_scale_free(&und, 0.25, 77) } else { und };
        let tag = if directed { "e2e-d" } else { "e2e-u" };
        let (path, flat, relabeled) = build_index_file(&g, tag);
        let truth = all_pairs(&relabeled);

        let config = ServerConfig { threads: 3, batch_threads: 2, ..ServerConfig::default() };
        let handle = serve("127.0.0.1:0", &path, config).expect("serve");
        let addr = handle.local_addr();

        let n = relabeled.num_vertices() as VertexId;
        let pairs: Vec<(VertexId, VertexId)> =
            (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect();
        let expect: Vec<Dist> = pairs.iter().map(|&(s, t)| flat.query(s, t)).collect();
        for (&(s, t), &want) in pairs.iter().zip(&expect) {
            assert_eq!(want, truth[s as usize][t as usize], "flat vs BFS {s}->{t}");
        }

        // Four concurrent clients: each answers its slice batched and
        // a subsample as single-pair requests.
        std::thread::scope(|scope| {
            let chunk = pairs.len().div_ceil(4);
            for (pair_slice, expect_slice) in pairs.chunks(chunk).zip(expect.chunks(chunk)) {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let got = client.query(pair_slice).expect("batched query");
                    assert_eq!(got, expect_slice, "batched slice diverges ({tag})");
                    for (&(s, t), &want) in pair_slice.iter().zip(expect_slice).step_by(5) {
                        assert_eq!(
                            client.query_one(s, t).expect("single query"),
                            want,
                            "single {s}->{t} ({tag})"
                        );
                    }
                });
            }
        });

        handle.shutdown();
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn disk_fallback_admission_serves_identical_answers() {
    // A 1-byte admission budget forces the CachedDiskIndex fallback;
    // wire answers must still be bit-identical to the resident path.
    let g = glp(&GlpParams::with_density(100, 3.0, 9));
    let (path, flat, _) = build_index_file(&g, "admission");
    let config =
        ServerConfig { threads: 2, max_resident_bytes: Some(1), ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path, config).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    assert!(!client.stats().expect("stats").resident, "budget of 1 byte must force disk serving");
    let pairs: Vec<(VertexId, VertexId)> = (0..100u32).map(|i| (i, (i * 13 + 7) % 100)).collect();
    assert_eq!(client.query(&pairs).expect("query"), flat.query_many(&pairs, 1));
    drop(client);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn hot_swap_promotes_without_mixing_generations() {
    // Two different graphs over the same vertex count, so every pair is
    // valid against both indexes but most distances differ.
    let ga = glp(&GlpParams::with_density(150, 3.0, 1001));
    let gb = glp(&GlpParams::with_density(150, 5.0, 2002));
    let (path_a, flat_a, _) = build_index_file(&ga, "swap-a");
    let (path_b, flat_b, _) = build_index_file(&gb, "swap-b");

    let pairs: Vec<(VertexId, VertexId)> = (0..150u32).map(|i| (i, (i * 37 + 11) % 150)).collect();
    let expect_a = flat_a.query_many(&pairs, 1);
    let expect_b = flat_b.query_many(&pairs, 1);
    assert_ne!(expect_a, expect_b, "test graphs must disagree for the swap to be observable");

    let config =
        ServerConfig { threads: 4, swap_path: Some(path_b.clone()), ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path_a, config).expect("serve");
    let addr = handle.local_addr();
    assert_eq!(handle.current_generation(), 1);

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for _ in 0..3 {
            let (stop, pairs, expect_a, expect_b) = (&stop, &pairs, &expect_a, &expect_b);
            clients.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (mut saw_a, mut saw_b) = (0u32, 0u32);
                while !stop.load(Ordering::SeqCst) {
                    let got = client.query(pairs).expect("mid-swap query");
                    // Every response comes from exactly one generation:
                    // never a mix of the two indexes.
                    if got == *expect_a {
                        saw_a += 1;
                    } else if got == *expect_b {
                        saw_b += 1;
                    } else {
                        panic!("response matches neither index (mixed generations?)");
                    }
                }
                (saw_a, saw_b)
            }));
        }

        // Let the clients observe generation 1, promote B mid-flight,
        // then let them observe generation 2.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let mut admin = Client::connect(addr).expect("admin connect");
        let (generation, vertices) = admin.swap().expect("swap");
        assert_eq!((generation, vertices), (2, 150));
        assert_eq!(admin.stats().expect("stats").generation, 2);
        // Requests issued strictly after the swap ack must be served by
        // the new index.
        assert_eq!(admin.query(&pairs).expect("post-swap query"), expect_b);
        std::thread::sleep(std::time::Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);

        let (mut total_a, mut total_b) = (0u32, 0u32);
        for c in clients {
            let (a, b) = c.join().expect("client thread");
            (total_a, total_b) = (total_a + a, total_b + b);
        }
        assert!(total_a > 0, "clients never observed the pre-swap index");
        assert!(total_b > 0, "clients never observed the post-swap index");
    });

    assert_eq!(handle.current_generation(), 2);
    handle.shutdown();
    for p in [path_a, path_b] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn malformed_frames_error_cleanly_and_never_hang() {
    use std::io::{Read, Write};

    let g = glp(&GlpParams::with_density(60, 3.0, 5));
    let (path, flat, _) = build_index_file(&g, "malformed");
    // Two workers: the pool is thread-per-connection, so a lone worker
    // would leave the later raw connections queued behind `client`.
    let config = ServerConfig { threads: 2, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", &path, config).expect("serve");
    let addr = handle.local_addr();
    let timeout = Some(std::time::Duration::from_secs(10));

    // Garbage magic: one error frame (HOPR, status error), then EOF —
    // the server closes rather than guessing at realignment.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(timeout).unwrap();
    raw.write_all(b"definitely not a HOPQ frame").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read error frame then EOF, not a hang");
    assert_eq!(&reply[..4], b"HOPR", "error frame magic");
    assert_eq!(reply[5], 1, "status byte says error");

    // Zero-pair batch: a clean per-request error, connection stays up
    // and the next (valid) request is answered.
    let mut client = Client::connect(addr).expect("connect");
    let err = client.query(&[]).expect_err("zero-pair batch must be rejected");
    assert!(err.to_string().contains("zero pairs"), "{err}");
    assert_eq!(client.query_one(1, 1).expect("connection survives"), 0);
    assert_eq!(client.query_one(0, 1).unwrap(), flat.query(0, 1));

    // Out-of-range vertices: an error response, not a dropped frame.
    let err = client.query(&[(0, 60)]).expect_err("out of range must be rejected");
    assert!(err.to_string().contains("out of range"), "{err}");
    drop(client); // free its worker slot for the raw connection below

    // Oversized declared payload: error frame, then close.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(timeout).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(b"HOPQ");
    frame.push(1); // version
    frame.push(1); // query
    frame.extend_from_slice(&1u64.to_le_bytes());
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&frame).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read error frame then EOF, not a hang");
    assert_eq!(&reply[..4], b"HOPR");
    assert_eq!(reply[5], 1);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
