//! Live-update tests for the `hopdb-server` daemon: the overlay-vs-
//! rebuild equivalence oracle (served distances after `update` batches
//! are bit-identical to a from-scratch build of the mutated graph,
//! before and after compaction, directed and undirected, at 1 and 4
//! batch threads), update frames interleaved with pipelined queries on
//! a single connection, and concurrent query fire across ingest and a
//! compaction promotion — every response consistent with exactly one
//! snapshot, never a mix.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hopdb_server::{serve, Client, ServerConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::builder::GraphBuilder;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Dist, Graph, VertexId};

/// Stage `g` the way `hopdb-cli build` would: edge-list file, disk
/// index, and `.rank` sidecar, so the server answers in *original*
/// vertex ids and compaction can rebuild from the edge list.
fn stage_cli_artifacts(g: &Graph, tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let graph_path = dir.join(format!("hopdb-live-{}-{tag}.txt", std::process::id()));
    let file = std::fs::File::create(&graph_path).expect("create edge list");
    hop_doubling::sfgraph::io::write_edge_list(g, std::io::BufWriter::new(file))
        .expect("write edge list");

    let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(g, &rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let index_path = dir.join(format!("hopdb-live-{}-{tag}.idx", std::process::id()));
    std::fs::copy(&staged, &index_path).expect("stage index");
    std::fs::remove_file(staged).ok();
    std::fs::write(format!("{}.rank", index_path.to_string_lossy()), ranking.to_sidecar_bytes())
        .expect("write sidecar");
    (graph_path, index_path)
}

fn cleanup(graph_path: &PathBuf, index_path: &PathBuf) {
    std::fs::remove_file(graph_path).ok();
    std::fs::remove_file(index_path).ok();
    std::fs::remove_file(format!("{}.rank", index_path.to_string_lossy())).ok();
}

/// `g` plus `edges` (original id space), as a weighted graph — the
/// from-scratch oracle the server's overlay must agree with.
fn mutate(g: &Graph, edges: &[(VertexId, VertexId, Dist)]) -> Graph {
    let mut b = if g.is_directed() {
        GraphBuilder::new_directed(g.num_vertices())
    } else {
        GraphBuilder::new_undirected(g.num_vertices())
    }
    .weighted();
    for (u, v, w) in g.edge_list() {
        b.add_weighted_edge(u, v, w);
    }
    for &(u, v, w) in edges {
        b.add_weighted_edge(u, v, w);
    }
    b.build()
}

/// Every (s, t) pair over `n` vertices.
fn full_grid(n: usize) -> Vec<(VertexId, VertexId)> {
    let n = n as VertexId;
    (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect()
}

/// `truth[s][t]` flattened in `pairs` order, with the wire encoding of
/// unreachability.
fn expect_of(truth: &[Vec<Dist>], pairs: &[(VertexId, VertexId)]) -> Vec<Dist> {
    use hop_doubling::hopdb_server::proto::UNREACHABLE;
    pairs
        .iter()
        .map(|&(s, t)| {
            let d = truth[s as usize][t as usize];
            if d == hop_doubling::sfgraph::INF_DIST {
                UNREACHABLE
            } else {
                d
            }
        })
        .collect()
}

#[test]
fn overlay_matches_full_rebuild_oracle() {
    for directed in [false, true] {
        let n = 100;
        let und = glp(&GlpParams::with_density(n, 3.0, if directed { 501 } else { 502 }));
        let g = if directed { orient_scale_free(&und, 0.25, 7) } else { und };
        let tag = if directed { "oracle-d" } else { "oracle-u" };
        let (graph_path, index_path) = stage_cli_artifacts(&g, tag);

        // Two batches: the second arrives with the first already in the
        // log, and one weight-2 edge exercises the weighted merge path.
        let batch1: Vec<(VertexId, VertexId, Dist)> = vec![(0, 99, 1), (3, 71, 1)];
        let batch2: Vec<(VertexId, VertexId, Dist)> = vec![(12, 44, 2), (99, 50, 1)];
        let all: Vec<(VertexId, VertexId, Dist)> = batch1.iter().chain(&batch2).copied().collect();
        let base_truth = all_pairs(&g);
        let mutated_truth = all_pairs(&mutate(&g, &all));

        let pairs = full_grid(n);
        let expect_base = expect_of(&base_truth, &pairs);
        let expect_mutated = expect_of(&mutated_truth, &pairs);
        assert_ne!(expect_base, expect_mutated, "updates must be observable ({tag})");

        for batch_threads in [1usize, 4] {
            let config = ServerConfig {
                threads: 2,
                batch_threads,
                source_graph: Some(graph_path.clone()),
                compact_threshold: 0, // manual compaction only
                ..ServerConfig::default()
            };
            let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
            let mut client = Client::connect(handle.local_addr()).expect("connect");

            assert_eq!(client.query(&pairs).expect("base query"), expect_base);
            let (generation, _) = client.update(&batch1).expect("update 1");
            assert_eq!(generation, 1, "updates do not bump the generation");
            let (_, overlay_edges) = client.update(&batch2).expect("update 2");
            assert!(overlay_edges >= 1, "overlay tracks the accumulated log");

            // Overlay answers == from-scratch build of the mutated graph.
            assert_eq!(
                client.query(&pairs).expect("overlay query"),
                expect_mutated,
                "overlay diverges from full rebuild ({tag}, {batch_threads} threads)"
            );

            // Fold the overlay into a fresh frozen generation: answers
            // must not change across the promotion.
            let (generation, vertices) = client.compact().expect("compact");
            assert_eq!((generation, vertices), (2, n as u64), "({tag})");
            assert_eq!(
                client.query(&pairs).expect("compacted query"),
                expect_mutated,
                "compacted index diverges from full rebuild ({tag}, {batch_threads} threads)"
            );
            let info = client.info().expect("info");
            assert_eq!(info.generation, 2, "({tag})");
            assert_eq!(info.overlay_edges, 0, "compaction must drain the overlay ({tag})");
            assert_eq!(info.compactions, 1, "({tag})");

            handle.shutdown();
        }
        cleanup(&graph_path, &index_path);
    }
}

#[test]
fn update_frames_interleave_with_pipelined_queries() {
    use hop_doubling::hopdb_server::proto::{read_response, Request, RequestBody, ResponseBody};
    use std::collections::HashMap;

    let n = 80;
    let g = glp(&GlpParams::with_density(n, 3.0, 601));
    let truth = all_pairs(&g);
    // A far-apart reachable pair, so the inserted weight-1 edge is
    // observable the instant the update lands.
    let (s, t, base) = full_grid(n)
        .into_iter()
        .filter(|&(s, t)| {
            s != t && truth[s as usize][t as usize] != hop_doubling::sfgraph::INF_DIST
        })
        .map(|(s, t)| (s, t, truth[s as usize][t as usize]))
        .max_by_key(|&(_, _, d)| d)
        .expect("a reachable pair");
    assert!(base > 1, "need a non-adjacent pair");
    let (graph_path, index_path) = stage_cli_artifacts(&g, "pipeline");

    let mut backends = vec![hop_doubling::hopdb_server::Backend::Threads];
    #[cfg(target_os = "linux")]
    backends.push(hop_doubling::hopdb_server::Backend::Epoll);

    for backend in backends {
        let config = ServerConfig {
            backend,
            threads: 2,
            source_graph: Some(graph_path.clone()),
            compact_threshold: 0,
            ..ServerConfig::default()
        };
        let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");

        // One connection, three frames in a single write: query, update
        // inserting (s, t, 1), query again. Queries pipelined before
        // the update answer from the pre-update snapshot; queries after
        // it see the new edge — never the other way around.
        let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(20))).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&Request { id: 1, body: RequestBody::Query(vec![(s, t)]) }.encode());
        wire.extend_from_slice(
            &Request { id: 2, body: RequestBody::Update(vec![(s, t, 1)]) }.encode(),
        );
        wire.extend_from_slice(&Request { id: 3, body: RequestBody::Query(vec![(s, t)]) }.encode());
        stream.write_all(&wire).expect("pipelined write");

        let mut reader = std::io::BufReader::new(stream);
        let mut got: HashMap<u64, ResponseBody> = HashMap::new();
        for _ in 0..3 {
            let resp = read_response(&mut reader).expect("response frame");
            got.insert(resp.id, resp.body);
        }
        assert_eq!(
            got.get(&1),
            Some(&ResponseBody::Distances(vec![base])),
            "pre-update query answered post-update ({backend:?})"
        );
        assert_eq!(
            got.get(&2),
            Some(&ResponseBody::Updated { generation: 1, overlay_edges: 1 }),
            "({backend:?})"
        );
        assert_eq!(
            got.get(&3),
            Some(&ResponseBody::Distances(vec![1])),
            "post-update query answered pre-update ({backend:?})"
        );
        handle.shutdown();
    }
    cleanup(&graph_path, &index_path);
}

#[test]
fn concurrent_queries_during_ingest_and_compaction_promotion() {
    let n = 120;
    let g = glp(&GlpParams::with_density(n, 3.0, 701));
    let (graph_path, index_path) = stage_cli_artifacts(&g, "concurrent");
    let pairs: Vec<(VertexId, VertexId)> =
        (0..n as VertexId).map(|i| (i, (i * 37 + 11) % n as VertexId)).collect();

    // Three update batches, each shortcutting a pair the probe set
    // actually queries, so every snapshot has a distinct answer vector.
    let base_truth = all_pairs(&g);
    let mut shortcuts: Vec<(VertexId, VertexId, Dist)> = pairs
        .iter()
        .filter(|&&(s, t)| {
            s != t
                && base_truth[s as usize][t as usize] > 2
                && base_truth[s as usize][t as usize] != hop_doubling::sfgraph::INF_DIST
        })
        .map(|&(s, t)| (s, t, 1))
        .collect();
    shortcuts.truncate(3);
    assert_eq!(shortcuts.len(), 3, "probe set too easy; reseed the graph");

    // expects[i] = answers after the first i batches; the final vector
    // also covers post-compaction (compaction preserves answers).
    let mut expects: Vec<Vec<Dist>> = vec![expect_of(&base_truth, &pairs)];
    for i in 1..=shortcuts.len() {
        expects.push(expect_of(&all_pairs(&mutate(&g, &shortcuts[..i])), &pairs));
    }
    for w in expects.windows(2) {
        assert_ne!(w[0], w[1], "snapshots must be distinguishable");
    }

    let config = ServerConfig {
        threads: 5,
        batch_threads: 2,
        source_graph: Some(graph_path.clone()),
        compact_threshold: 0,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for _ in 0..3 {
            let (stop, pairs, expects) = (&stop, &pairs, &expects);
            clients.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut seen = vec![0u32; expects.len()];
                while !stop.load(Ordering::SeqCst) {
                    let got = client.query(pairs).expect("query during ingest/compaction");
                    // Exactly one snapshot per response — never a mix
                    // of overlay states or generations.
                    let which = expects.iter().position(|e| *e == got);
                    let which = which.expect("response matches no snapshot (mixed state?)");
                    seen[which] += 1;
                }
                seen
            }));
        }

        let mut admin = Client::connect(addr).expect("admin connect");
        std::thread::sleep(std::time::Duration::from_millis(100));
        for batch in shortcuts.chunks(1) {
            admin.update(batch).expect("update");
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        // Promote a compaction while the clients keep firing.
        let (generation, vertices) = admin.compact().expect("compact");
        assert_eq!((generation, vertices), (2, n as u64));
        std::thread::sleep(std::time::Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);

        let mut seen = vec![0u32; expects.len()];
        for c in clients {
            for (total, s) in seen.iter_mut().zip(c.join().expect("client thread")) {
                *total += s;
            }
        }
        // The fleet observed both the pre-update state and the final
        // one; every intermediate response matched some prefix.
        assert!(seen[0] > 0, "clients never observed the pre-update snapshot: {seen:?}");
        assert!(
            *seen.last().unwrap() > 0,
            "clients never observed the fully updated snapshot: {seen:?}"
        );

        // After the dust settles: final answers, new generation, empty
        // overlay.
        assert_eq!(admin.query(&pairs).expect("final query"), *expects.last().unwrap());
        let info = admin.info().expect("info");
        assert_eq!(info.generation, 2);
        assert_eq!(info.overlay_edges, 0);
        assert_eq!(info.compactions, 1);
    });

    handle.shutdown();
    cleanup(&graph_path, &index_path);
}

#[cfg(target_os = "linux")]
#[test]
fn http_update_roundtrip_on_the_epoll_front() {
    use std::io::Read as _;

    let n = 60;
    let g = glp(&GlpParams::with_density(n, 3.0, 801));
    let truth = all_pairs(&g);
    let (s, t, base) = full_grid(n)
        .into_iter()
        .filter(|&(s, t)| {
            s != t && truth[s as usize][t as usize] != hop_doubling::sfgraph::INF_DIST
        })
        .map(|(s, t)| (s, t, truth[s as usize][t as usize]))
        .max_by_key(|&(_, _, d)| d)
        .expect("a reachable pair");
    assert!(base > 1);
    let (graph_path, index_path) = stage_cli_artifacts(&g, "http");

    let config = ServerConfig {
        backend: hop_doubling::hopdb_server::Backend::Epoll,
        source_graph: Some(graph_path.clone()),
        compact_threshold: 0,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");

    let roundtrip = |request: String| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(20))).unwrap();
        stream.write_all(request.as_bytes()).expect("write");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf).into_owned();
        let code = text.split_whitespace().nth(1).expect("status").parse().expect("status code");
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (code, body)
    };

    let json = format!("{{\"edges\":[[{s},{t},1]]}}");
    let (code, body) = roundtrip(format!(
        "POST /update HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{json}",
        json.len()
    ));
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"generation\":1"), "{body}");
    assert!(body.contains("\"overlay_edges\":1"), "{body}");

    let (code, body) = roundtrip(format!(
        "GET /query?s={s}&t={t} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    ));
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"dist\":1"), "HTTP query missed the live edge: {body}");

    let (code, body) =
        roundtrip("GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_string());
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"overlay_edges\":1"), "{body}");
    assert!(body.contains("\"compactions\":0"), "{body}");

    handle.shutdown();
    cleanup(&graph_path, &index_path);
}
