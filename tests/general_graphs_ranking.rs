//! §7 — general (non-scale-free) graphs: degree ranking degrades on
//! hub-free topologies; a betweenness-style ranking recovers much of
//! the label-size headroom. This is the paper's closing suggestion made
//! executable.

use hop_doubling::graphgen::grid;
use hop_doubling::hopdb::{build, HopDbConfig};
use hop_doubling::sfgraph::centrality::sampled_betweenness_scores;
use hop_doubling::sfgraph::ranking::RankBy;
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::VertexId;

#[test]
fn betweenness_ranking_beats_degree_on_grids() {
    let g = grid(12, 12);
    let degree = build(&g, &HopDbConfig::default());
    let scores = sampled_betweenness_scores(&g, g.num_vertices(), 7);
    let betweenness =
        build(&g, &HopDbConfig { rank_by: Some(RankBy::Score(scores)), ..HopDbConfig::default() });
    // Both must stay exact.
    let ap = all_pairs(&g);
    for s in 0..g.num_vertices() as VertexId {
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(degree.query(s, t), ap[s as usize][t as usize]);
            assert_eq!(betweenness.query(s, t), ap[s as usize][t as usize]);
        }
    }
    // On a grid, degree ranking is near-arbitrary (everything has
    // degree ≤ 4); path-hitting vertices first must shrink the index.
    let (d, b) = (degree.index().total_entries(), betweenness.index().total_entries());
    assert!(
        (b as f64) < 0.9 * d as f64,
        "betweenness ranking should cut ≥10% of entries: degree={d}, betweenness={b}"
    );
}

#[test]
fn betweenness_ranking_is_harmless_on_scale_free_graphs() {
    // On hub graphs, degree and betweenness rankings mostly agree; the
    // index must stay the same order of magnitude.
    let g =
        hop_doubling::graphgen::glp(&hop_doubling::graphgen::GlpParams::with_vertices(2_000, 11));
    let degree = build(&g, &HopDbConfig::default());
    let scores = sampled_betweenness_scores(&g, 64, 5);
    let betweenness =
        build(&g, &HopDbConfig { rank_by: Some(RankBy::Score(scores)), ..HopDbConfig::default() });
    let (d, b) = (degree.index().total_entries(), betweenness.index().total_entries());
    assert!((b as f64) < 2.5 * d as f64, "betweenness should not blow up: {d} vs {b}");
}
