//! Property: every query surface answers identically.
//!
//! On random GLP scale-free graphs (directed and undirected), the
//! frozen [`FlatIndex`], the nested [`LabelIndex`], the on-disk
//! [`DiskIndex`], and the BFS ground truth must agree on every tested
//! pair, and `FlatIndex::query_many` must return the same answers in
//! input order at every thread count.

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::hoplabels::flat::FlatIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::all_pairs;
use hop_doubling::sfgraph::{Graph, VertexId};
use proptest::prelude::*;

/// Strategy: a small random GLP graph, optionally oriented (directed).
fn glp_strategy(directed: bool) -> impl Strategy<Value = Graph> {
    (30usize..90, 1u64..5000, 20u64..45).prop_map(move |(n, seed, density_tenths)| {
        let und = glp(&GlpParams::with_density(n, density_tenths as f64 / 10.0, seed));
        if directed {
            orient_scale_free(&und, 0.25, seed)
        } else {
            und
        }
    })
}

/// Check every surface against BFS truth on all pairs of `g`.
fn check_equivalence(g: &Graph) {
    let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(g, &rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let truth = all_pairs(&relabeled);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let flat = FlatIndex::from_index(&index);
    let store = TempStore::new().expect("temp store");
    let mut disk = DiskIndex::create(&index, &store, "flat-eq").expect("disk index");

    let n = g.num_vertices() as VertexId;
    let mut pairs = Vec::with_capacity((n as usize) * (n as usize));
    for s in 0..n {
        for t in 0..n {
            let want = truth[s as usize][t as usize];
            prop_assert_eq!(index.query(s, t), want, "nested {s}->{t}");
            prop_assert_eq!(flat.query(s, t), want, "flat {s}->{t}");
            prop_assert_eq!(disk.query(s, t).expect("disk query"), want, "disk {s}->{t}");
            pairs.push((s, t));
        }
    }

    // The batched path must agree pair-for-pair, in input order, at
    // every thread count.
    let expect: Vec<u32> = pairs.iter().map(|&(s, t)| flat.query(s, t)).collect();
    for threads in [1usize, 2, 4, 8] {
        let got = flat.query_many(&pairs, threads);
        prop_assert_eq!(&got, &expect, "query_many at {threads} threads");
    }

    // And the flat index reloaded from the serialized on-disk image
    // must be the same structure queries are already served from.
    let path = disk.persist();
    let reloaded = FlatIndex::load(&path).expect("flat load");
    std::fs::remove_file(path).ok();
    prop_assert_eq!(reloaded, flat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_query_surfaces_agree_undirected(g in glp_strategy(false)) {
        check_equivalence(&g);
    }

    #[test]
    fn all_query_surfaces_agree_directed(g in glp_strategy(true)) {
        check_equivalence(&g);
    }
}
