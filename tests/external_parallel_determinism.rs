//! Threaded external-build determinism: the §4 disk-based engine must
//! produce an index that serializes to byte-identical files at every
//! thread count, equals the in-memory engine's index entry for entry,
//! reports thread-count-independent I/O totals, and answers every query
//! exactly like the BFS ground truth.

use hop_doubling::extmem::device::TempStore;
use hop_doubling::extmem::ExtMemConfig;
use hop_doubling::graphgen::{glp, orient_scale_free, GlpParams};
use hop_doubling::hopdb::external::build_external;
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::traversal::bfs;
use hop_doubling::sfgraph::{Direction, Graph, VertexId};

/// Serialize an index through the one on-disk code path and return the
/// file's bytes.
fn serialized(index: &hop_doubling::hoplabels::LabelIndex) -> Vec<u8> {
    let store = TempStore::new().unwrap();
    let disk = DiskIndex::create(index, &store, "ext-determinism").unwrap();
    let path = disk.persist();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(path).unwrap();
    bytes
}

/// Budget small enough that the sorters spill and the background spill
/// worker actually runs on these test-sized graphs.
fn spilling_ext() -> ExtMemConfig {
    ExtMemConfig { memory_records: 512, block_bytes: 1024 }
}

fn assert_external_thread_counts_agree(g: &Graph) {
    let (mem, _) = build_prelabeled(g, &HopDbConfig::default());
    let seq = build_external(g, &HopDbConfig::default().with_parallelism(1), &spilling_ext())
        .expect("sequential external build");
    assert_eq!(seq.index, mem, "external engine diverges from the in-memory engine");
    let seq_bytes = serialized(&seq.index);
    for threads in [2usize, 4] {
        let par =
            build_external(g, &HopDbConfig::default().with_parallelism(threads), &spilling_ext())
                .expect("threaded external build");
        assert_eq!(
            par.index, seq.index,
            "{threads}-thread external index differs from sequential entry-for-entry"
        );
        assert_eq!(
            serialized(&par.index),
            seq_bytes,
            "{threads}-thread serialized external index is not byte-identical"
        );
        assert_eq!(
            (par.io, par.sort_runs, par.merge_passes),
            (seq.io, seq.sort_runs, seq.merge_passes),
            "I/O accounting must not depend on the thread count ({threads} threads)"
        );
        assert_eq!(par.stats.num_iterations(), seq.stats.num_iterations());
        for (p, s) in par.stats.iterations.iter().zip(&seq.stats.iterations) {
            assert_eq!(
                (p.candidates, p.pruned, p.inserted, p.total_entries),
                (s.candidates, s.pruned, s.inserted, s.total_entries),
                "iteration {} counters diverged at {threads} threads",
                p.iteration
            );
        }
    }
}

#[test]
fn undirected_glp_external_builds_identically_across_thread_counts() {
    let raw = glp(&GlpParams::with_density(450, 3.0, 31));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    assert_external_thread_counts_agree(&g);

    // And the threaded external build answers exactly like BFS truth.
    let result = build_external(&g, &HopDbConfig::default().with_parallelism(4), &spilling_ext())
        .expect("threaded external build");
    for s in (0..g.num_vertices() as VertexId).step_by(41) {
        let truth = bfs(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(result.index.query(s, t), truth[t as usize], "dist({s}, {t})");
        }
    }
}

#[test]
fn directed_glp_external_builds_identically_across_thread_counts() {
    let raw = orient_scale_free(&glp(&GlpParams::with_density(400, 2.5, 47)), 0.25, 47);
    let ranking = rank_vertices(&raw, &RankBy::DegreeProduct);
    let g = relabel_by_rank(&raw, &ranking);
    assert_external_thread_counts_agree(&g);

    let result = build_external(&g, &HopDbConfig::default().with_parallelism(4), &spilling_ext())
        .expect("threaded external build");
    for s in (0..g.num_vertices() as VertexId).step_by(37) {
        let truth = bfs(&g, s, Direction::Out);
        for t in 0..g.num_vertices() as VertexId {
            assert_eq!(result.index.query(s, t), truth[t as usize], "dist({s}, {t})");
        }
    }
}

#[test]
fn zero_parallelism_resolves_to_all_cores_externally() {
    // `--threads 0` means "all cores"; whatever that resolves to, the
    // index must still be the sequential one.
    let raw = glp(&GlpParams::with_density(250, 3.0, 5));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    let seq = build_external(&g, &HopDbConfig::default(), &spilling_ext()).unwrap();
    let auto =
        build_external(&g, &HopDbConfig::default().with_parallelism(0), &spilling_ext()).unwrap();
    assert_eq!(auto.index, seq.index);
    assert_eq!(serialized(&auto.index), serialized(&seq.index));
}
