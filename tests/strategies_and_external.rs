//! Strategy-equivalence and external-engine integration tests:
//!
//! * all strategies answer identically (they may keep different label
//!   sets; §5.2 says sizes coincide after exhaustive pruning);
//! * the external §4 build is bit-identical to the in-memory build;
//! * disk-serialized indexes answer like in-memory ones;
//! * iteration counts respect Theorems 4 and 6.

use hop_doubling::extmem::device::TempStore;
use hop_doubling::extmem::ExtMemConfig;
use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::external::build_external;
use hop_doubling::hopdb::{build_prelabeled, postprune, HopDbConfig, Strategy};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::analysis::hop_diameter;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

fn ranked_random(rng: &mut rand::rngs::StdRng, directed: bool) -> Graph {
    let n = rng.gen_range(4..30);
    let mut b =
        if directed { GraphBuilder::new_directed(n) } else { GraphBuilder::new_undirected(n) };
    for _ in 0..rng.gen_range(n..4 * n) {
        b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
    }
    let g = b.build();
    let ranking = rank_vertices(&g, &RankBy::Degree);
    relabel_by_rank(&g, &ranking)
}

#[test]
fn strategies_answer_identically() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for _ in 0..10 {
        let directed = rng.gen_bool(0.5);
        let g = ranked_random(&mut rng, directed);
        let configs = [
            HopDbConfig::with_strategy(Strategy::Doubling),
            HopDbConfig::with_strategy(Strategy::Stepping),
            HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 3 }),
            HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 10 }),
        ];
        let indexes: Vec<_> = configs.iter().map(|c| build_prelabeled(&g, c).0).collect();
        let n = g.num_vertices() as VertexId;
        for s in 0..n {
            for t in 0..n {
                let d0 = indexes[0].query(s, t);
                for idx in &indexes[1..] {
                    assert_eq!(idx.query(s, t), d0, "{s}->{t}");
                }
            }
        }
    }
}

#[test]
fn post_pruned_sizes_coincide_across_strategies() {
    // §5.2: Hop-Doubling with exhaustive pruning reaches Hop-Stepping's
    // label size; the hybrid must land on the same canonical size too.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..8 {
        let g = ranked_random(&mut rng, false);
        let mut sizes = Vec::new();
        for s in [Strategy::Doubling, Strategy::Stepping, Strategy::Hybrid { switch_at: 4 }] {
            let (mut idx, _) = build_prelabeled(&g, &HopDbConfig::with_strategy(s));
            postprune::post_prune(&mut idx);
            sizes.push(idx.total_entries());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes differ: {sizes:?}");
    }
}

#[test]
fn external_build_matches_memory_on_glp() {
    let raw = glp(&GlpParams::with_vertices(400, 17));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    let cfg = HopDbConfig::default();
    let (mem, _) = build_prelabeled(&g, &cfg);
    let ext = ExtMemConfig { memory_records: 512, block_bytes: 1024 };
    let result = build_external(&g, &cfg, &ext).expect("external build");
    assert_eq!(result.index, mem);
    let (read_bytes, write_bytes, _, _) = result.io;
    assert!(read_bytes > 0 && write_bytes > 0, "build must touch the disk");
}

#[test]
fn disk_index_round_trips_queries() {
    let raw = glp(&GlpParams::with_vertices(300, 3));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    let (index, _) = build_prelabeled(&g, &HopDbConfig::default());
    let store = TempStore::new().unwrap();
    let mut disk = DiskIndex::create(&index, &store, "it").unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    for _ in 0..500 {
        let s = rng.gen_range(0..g.num_vertices()) as VertexId;
        let t = rng.gen_range(0..g.num_vertices()) as VertexId;
        assert_eq!(disk.query(s, t).unwrap(), index.query(s, t));
    }
}

#[test]
fn iteration_bounds_hold_on_scale_free_graphs() {
    // Theorem 6: stepping ≤ D_H (+1 to detect the fixpoint);
    // Theorem 4: doubling ≤ 2⌈log D_H⌉ (+1).
    let raw = glp(&GlpParams::with_vertices(800, 21));
    let ranking = rank_vertices(&raw, &RankBy::Degree);
    let g = relabel_by_rank(&raw, &ranking);
    let dh = hop_diameter(&g, 8, 1000).max(2);

    let (_, step) = build_prelabeled(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
    assert!(
        step.num_iterations() <= dh + 1,
        "stepping {} iterations > D_H {} + 1",
        step.num_iterations(),
        dh
    );

    let (_, dbl) = build_prelabeled(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
    let bound = 2 * (dh as f64).log2().ceil() as u32 + 1;
    assert!(
        dbl.num_iterations() <= bound,
        "doubling {} iterations > bound {}",
        dbl.num_iterations(),
        bound
    );
}

#[test]
fn hybrid_reduces_iterations_on_long_diameter_graphs() {
    // Table 8's headline: on large-diameter graphs, hybrid needs far
    // fewer iterations than pure stepping.
    let g = {
        let raw = hop_doubling::graphgen::grid(6, 40); // diameter 44
        let ranking = rank_vertices(&raw, &RankBy::Degree);
        relabel_by_rank(&raw, &ranking)
    };
    let (_, step) = build_prelabeled(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
    let (_, hybrid) =
        build_prelabeled(&g, &HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 10 }));
    assert!(
        hybrid.num_iterations() < step.num_iterations(),
        "hybrid {} !< stepping {}",
        hybrid.num_iterations(),
        step.num_iterations()
    );
}
