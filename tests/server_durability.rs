//! Durability-tier tests for the `hopdb-server` daemon, in-process:
//! WAL replay across a restart restores every acknowledged update, a
//! torn tail is truncated and surfaced in `info`, a mixed-lineage
//! durability directory is refused at boot, a checkpoint truncates the
//! WAL and survives a restart booting from its image, an injected
//! fsync failure rejects the update without killing the server, and an
//! aborted compaction re-arms and is counted.

use std::path::{Path, PathBuf};

use hop_doubling::extmem::device::TempStore;
use hop_doubling::graphgen::{glp, GlpParams};
use hop_doubling::hopdb::{build_prelabeled, HopDbConfig};
use hop_doubling::hopdb_server::wal::{self, Durability};
use hop_doubling::hopdb_server::{serve, Client, ServerConfig};
use hop_doubling::hoplabels::disk::DiskIndex;
use hop_doubling::sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use hop_doubling::sfgraph::{Dist, Graph, VertexId};

/// Stage `g` the way `hopdb-cli build` would: edge-list file, disk
/// index, and `.rank` sidecar (see `server_live_updates.rs`).
fn stage(g: &Graph, tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let graph_path = dir.join(format!("hopdb-dur-{}-{tag}.txt", std::process::id()));
    let file = std::fs::File::create(&graph_path).expect("create edge list");
    hop_doubling::sfgraph::io::write_edge_list(g, std::io::BufWriter::new(file))
        .expect("write edge list");

    let ranking = rank_vertices(g, &RankBy::Degree);
    let relabeled = relabel_by_rank(g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let index_path = dir.join(format!("hopdb-dur-{}-{tag}.idx", std::process::id()));
    std::fs::copy(&staged, &index_path).expect("stage index");
    std::fs::remove_file(staged).ok();
    std::fs::write(format!("{}.rank", index_path.to_string_lossy()), ranking.to_sidecar_bytes())
        .expect("write sidecar");

    let wal_dir = dir.join(format!("hopdb-dur-{}-{tag}-wal", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();
    (graph_path, index_path, wal_dir)
}

fn cleanup(graph_path: &PathBuf, index_path: &PathBuf, wal_dir: &PathBuf) {
    std::fs::remove_file(graph_path).ok();
    std::fs::remove_file(index_path).ok();
    std::fs::remove_file(format!("{}.rank", index_path.to_string_lossy())).ok();
    std::fs::remove_dir_all(wal_dir).ok();
}

fn durable_config(graph: &Path, wal_dir: &Path, durability: Durability) -> ServerConfig {
    ServerConfig {
        threads: 2,
        source_graph: Some(graph.to_path_buf()),
        compact_threshold: 0,
        wal_dir: Some(wal_dir.to_path_buf()),
        durability,
        ..ServerConfig::default()
    }
}

/// A probe set that visits every vertex.
fn probes(n: usize) -> Vec<(VertexId, VertexId)> {
    (0..n as VertexId).map(|i| (i, (i * 37 + 11) % n as VertexId)).collect()
}

#[test]
fn replay_restores_acked_updates_across_restart() {
    let n = 90;
    let g = glp(&GlpParams::with_density(n, 3.0, 901));
    let (graph_path, index_path, wal_dir) = stage(&g, "replay");
    let pairs = probes(n);
    let batches: [Vec<(VertexId, VertexId, Dist)>; 2] =
        [vec![(0, 89, 1), (3, 71, 1)], vec![(12, 44, 2)]];

    let (answers, overlay_edges) = {
        let config = durable_config(&graph_path, &wal_dir, Durability::Always);
        let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        for batch in &batches {
            client.update(batch).expect("update");
        }
        let answers = client.query(&pairs).expect("query");
        let info = client.info().expect("info");
        assert_eq!(info.durability, 2, "always = 2 on the wire");
        assert_eq!(info.wal_epoch, 0);
        assert_eq!(info.wal_records, 2, "one WAL record per acked batch");
        assert!(info.wal_bytes > wal::WAL_HEADER_LEN);
        handle.shutdown();
        (answers, info.overlay_edges)
    };

    // Restart against the SAME wal dir: the overlay must come back
    // from the log alone (the index file never saw the updates).
    let config = durable_config(&graph_path, &wal_dir, Durability::Always);
    let handle = serve("127.0.0.1:0", &index_path, config).expect("re-serve");
    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    assert_eq!(
        client.query(&pairs).expect("query after recovery"),
        answers,
        "recovered answers diverge from the pre-restart state"
    );
    let info = client.info().expect("info");
    assert_eq!(info.recovered_records, 2, "both batches replayed");
    assert_eq!(info.recovered_dropped_bytes, 0);
    assert_eq!(info.overlay_edges, overlay_edges, "replayed overlay size");
    handle.shutdown();
    cleanup(&graph_path, &index_path, &wal_dir);
}

#[test]
fn torn_tail_is_truncated_and_surfaced() {
    let n = 60;
    let g = glp(&GlpParams::with_density(n, 3.0, 902));
    let (graph_path, index_path, wal_dir) = stage(&g, "torn");
    let pairs = probes(n);

    let answers = {
        let config = durable_config(&graph_path, &wal_dir, Durability::Always);
        let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        client.update(&[(0, 59, 1)]).expect("update");
        let answers = client.query(&pairs).expect("query");
        handle.shutdown();
        answers
    };

    // Simulate a crash mid-append: a half-written record at the tail.
    let wal_path = wal_dir.join(wal::wal_file_name(0));
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    let torn = [17u8, 0, 0, 0, 0xDE, 0xAD];
    bytes.extend_from_slice(&torn);
    std::fs::write(&wal_path, &bytes).expect("tear wal");

    let config = durable_config(&graph_path, &wal_dir, Durability::Always);
    let handle = serve("127.0.0.1:0", &index_path, config).expect("re-serve");
    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    assert_eq!(client.query(&pairs).expect("query"), answers, "acked prefix must survive");
    let info = client.info().expect("info");
    assert_eq!(info.recovered_records, 1);
    assert_eq!(info.recovered_dropped_bytes, torn.len() as u64);
    // The torn bytes are gone from disk, not just skipped.
    assert_eq!(std::fs::read(&wal_path).expect("reread").len() as u64, info.wal_bytes);
    handle.shutdown();
    cleanup(&graph_path, &index_path, &wal_dir);
}

#[test]
fn mixed_lineage_directory_is_refused() {
    let n = 40;
    let g = glp(&GlpParams::with_density(n, 3.0, 903));
    let (graph_path, index_path, wal_dir) = stage(&g, "mixed");
    std::fs::create_dir_all(&wal_dir).unwrap();

    // CURRENT says epoch 7, but the epoch-7 log header says epoch 8:
    // two different lineages got mixed into one directory. Booting
    // from either would silently serve wrong answers — refuse instead.
    wal::write_manifest(
        &wal_dir,
        &wal::Manifest { epoch: 7, index_path: index_path.clone() },
        hop_doubling::extmem::IoStats::shared(),
    )
    .expect("write manifest");
    let mut header = Vec::new();
    header.extend_from_slice(b"HOPWAL01");
    header.extend_from_slice(&8u64.to_le_bytes());
    std::fs::write(wal_dir.join(wal::wal_file_name(7)), &header).expect("write stray wal");

    let config = durable_config(&graph_path, &wal_dir, Durability::Batch);
    match serve("127.0.0.1:0", &index_path, config) {
        Err(err) => assert!(err.to_string().contains("lineages"), "{err}"),
        Ok(handle) => {
            handle.shutdown();
            panic!("mixed lineage must not boot");
        }
    }
    cleanup(&graph_path, &index_path, &wal_dir);
}

#[test]
fn checkpoint_truncates_the_wal_and_survives_restart() {
    let n = 80;
    let g = glp(&GlpParams::with_density(n, 3.0, 904));
    let (graph_path, index_path, wal_dir) = stage(&g, "ckpt");
    let pairs = probes(n);

    let answers = {
        let config = durable_config(&graph_path, &wal_dir, Durability::Always);
        let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        client.update(&[(0, 79, 1), (5, 50, 1)]).expect("update");
        client.compact().expect("compact");
        let answers = client.query(&pairs).expect("query");
        let info = client.info().expect("info");
        assert_eq!(info.checkpoints, 1);
        assert_eq!(info.wal_epoch, 1, "checkpoint advances the epoch");
        assert_eq!(info.wal_records, 0, "the folded-in log is truncated");
        assert_eq!(info.aborted_compactions, 0);
        handle.shutdown();
        answers
    };

    // The checkpoint owns the durable state now: epoch-1 image + empty
    // epoch-1 log; the epoch-0 log is gone.
    assert!(wal_dir.join(wal::checkpoint_image_name(1)).exists());
    assert!(wal_dir.join(wal::wal_file_name(1)).exists());
    assert!(!wal_dir.join(wal::wal_file_name(0)).exists(), "old epoch must be collected");

    let config = durable_config(&graph_path, &wal_dir, Durability::Always);
    let handle = serve("127.0.0.1:0", &index_path, config).expect("re-serve");
    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    assert_eq!(
        client.query(&pairs).expect("query after recovery"),
        answers,
        "checkpoint image diverges from the served state"
    );
    let info = client.info().expect("info");
    assert_eq!(info.wal_epoch, 1);
    assert_eq!(info.recovered_records, 0, "nothing left to replay after a checkpoint");
    assert_eq!(info.overlay_edges, 0, "updates were folded into the image");
    handle.shutdown();
    cleanup(&graph_path, &index_path, &wal_dir);
}

#[test]
fn injected_fsync_failure_rejects_the_update_but_not_the_server() {
    use hop_doubling::extmem::device::faults;

    let n = 50;
    let g = glp(&GlpParams::with_density(n, 3.0, 905));
    let (graph_path, index_path, wal_dir) = stage(&g, "fsync");
    let pairs = probes(n);

    let config = durable_config(&graph_path, &wal_dir, Durability::Always);
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let base = client.query(&pairs).expect("base query");
    // An edge that shortcuts a probed pair, so (non-)acknowledgement
    // is observable through the probe answers.
    let (s, t) = pairs
        .iter()
        .zip(&base)
        .find(|&(&(s, t), &d)| {
            s != t && d > 1 && d != hop_doubling::hopdb_server::proto::UNREACHABLE
        })
        .map(|(&p, _)| p)
        .expect("a shortcut-able probe pair");

    // Scope the fault to this test's WAL file so parallel tests in
    // this binary (and the server's own index I/O) are untouched.
    faults::set_path_filter(Some("-fsync-wal"));
    faults::fail_fsync_after(0);
    let err = client.update(&[(s, t, 1)]).expect_err("fsync failure must fail the update");
    assert!(err.to_string().contains("wal append"), "{err}");
    faults::reset();

    // The batch was NOT acknowledged; it must not be observable, and
    // the server must keep serving and accepting new updates.
    assert_eq!(client.query(&pairs).expect("query"), base, "rejected batch leaked");
    client.update(&[(s, t, 1)]).expect("update after fault clears");
    assert_ne!(client.query(&pairs).expect("query"), base, "edge must now land");
    let info = client.info().expect("info");
    assert_eq!(info.wal_records, 1, "only the acked batch is in the log");
    handle.shutdown();
    cleanup(&graph_path, &index_path, &wal_dir);
}

#[test]
fn failed_compaction_is_counted_and_compaction_re_arms() {
    let n = 40;
    let g = glp(&GlpParams::with_density(n, 3.0, 906));
    let (graph_path, index_path, wal_dir) = stage(&g, "abort");
    // No --graph: every compaction attempt fails cleanly.
    let config = ServerConfig {
        threads: 2,
        wal_dir: Some(wal_dir.clone()),
        durability: Durability::Batch,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", &index_path, config).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for _ in 0..2 {
        let err = client.compact().expect_err("compaction without --graph must fail");
        assert!(err.to_string().contains("--graph"), "{err}");
    }
    let info = client.info().expect("info");
    assert_eq!(info.aborted_compactions, 2, "failed compactions must be counted");
    assert_eq!(info.compactions, 0);
    handle.shutdown();
    cleanup(&graph_path, &index_path, &wal_dir);
}
